#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "extsort/external_sorter.h"
#include "graph/graph_types.h"
#include "io/record_stream.h"
#include "test_util.h"
#include "util/random.h"

namespace extscc {
namespace {

using testing::MakeMemTestContext;
using testing::MakeTestContext;

struct U64Less {
  bool operator()(std::uint64_t a, std::uint64_t b) const { return a < b; }
};

std::vector<std::uint64_t> RandomValues(std::size_t n, std::uint64_t seed,
                                        std::uint64_t bound) {
  util::Rng rng(seed);
  std::vector<std::uint64_t> out(n);
  for (auto& v : out) v = rng.Uniform(bound);
  return out;
}

TEST(ExternalSortTest, MatchesStdSortSingleRun) {
  auto ctx = MakeMemTestContext(/*memory_bytes=*/1 << 20);
  auto values = RandomValues(1000, 42, 1 << 30);
  const std::string in = ctx->NewTempPath("in");
  const std::string out = ctx->NewTempPath("out");
  io::WriteAllRecords(ctx.get(), in, values);
  const auto info =
      extsort::SortFile<std::uint64_t, U64Less>(ctx.get(), in, out, U64Less());
  EXPECT_EQ(info.num_records, 1000u);
  EXPECT_EQ(info.num_runs, 1u);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(io::ReadAllRecords<std::uint64_t>(ctx.get(), out), values);
}

TEST(ExternalSortTest, MatchesStdSortManyRuns) {
  // Budget of 16 KB over 8-byte records -> 2K-record runs; 100K records
  // force a multi-run merge (and, with 4K blocks, a modest fan-in).
  // The suite's designated Posix round trip: the rest of the suite runs
  // on MemDevice scratch.
  auto ctx = MakeTestContext(/*memory_bytes=*/16 << 10);
  auto values = RandomValues(100'000, 7, 1u << 31);
  const std::string in = ctx->NewTempPath("in");
  const std::string out = ctx->NewTempPath("out");
  io::WriteAllRecords(ctx.get(), in, values);
  const auto info =
      extsort::SortFile<std::uint64_t, U64Less>(ctx.get(), in, out, U64Less());
  EXPECT_GT(info.num_runs, 1u);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(io::ReadAllRecords<std::uint64_t>(ctx.get(), out), values);
}

TEST(ExternalSortTest, TinyBudgetMultiPassMerge) {
  // M = 2 blocks of 4K: binary merges, multiple passes.
  auto ctx = MakeMemTestContext(/*memory_bytes=*/8 << 10, /*block_size=*/4096);
  auto values = RandomValues(50'000, 11, 1000);
  const std::string in = ctx->NewTempPath("in");
  const std::string out = ctx->NewTempPath("out");
  io::WriteAllRecords(ctx.get(), in, values);
  const auto info =
      extsort::SortFile<std::uint64_t, U64Less>(ctx.get(), in, out, U64Less());
  EXPECT_GT(info.merge_passes, 1u) << "tiny budget must force multiple passes";
  std::sort(values.begin(), values.end());
  EXPECT_EQ(io::ReadAllRecords<std::uint64_t>(ctx.get(), out), values);
}

TEST(ExternalSortTest, EmptyInput) {
  auto ctx = MakeMemTestContext();
  const std::string in = ctx->NewTempPath("in");
  const std::string out = ctx->NewTempPath("out");
  io::WriteAllRecords<std::uint64_t>(ctx.get(), in, {});
  const auto info =
      extsort::SortFile<std::uint64_t, U64Less>(ctx.get(), in, out, U64Less());
  EXPECT_EQ(info.num_records, 0u);
  EXPECT_TRUE(io::ReadAllRecords<std::uint64_t>(ctx.get(), out).empty());
}

TEST(ExternalSortTest, DedupCollapsesEqualRecords) {
  auto ctx = MakeMemTestContext(/*memory_bytes=*/16 << 10);
  std::vector<std::uint64_t> values;
  for (int rep = 0; rep < 50; ++rep) {
    for (std::uint64_t v = 0; v < 200; ++v) values.push_back(v);
  }
  const std::string in = ctx->NewTempPath("in");
  const std::string out = ctx->NewTempPath("out");
  io::WriteAllRecords(ctx.get(), in, values);
  extsort::SortFile<std::uint64_t, U64Less>(ctx.get(), in, out, U64Less(),
                                            /*dedup=*/true);
  const auto result = io::ReadAllRecords<std::uint64_t>(ctx.get(), out);
  ASSERT_EQ(result.size(), 200u);
  for (std::uint64_t v = 0; v < 200; ++v) EXPECT_EQ(result[v], v);
}

TEST(ExternalSortTest, DedupOnSingleRun) {
  auto ctx = MakeMemTestContext();
  const std::string in = ctx->NewTempPath("in");
  const std::string out = ctx->NewTempPath("out");
  io::WriteAllRecords<std::uint64_t>(ctx.get(), in, {5, 1, 5, 1, 5});
  extsort::SortFile<std::uint64_t, U64Less>(ctx.get(), in, out, U64Less(),
                                            /*dedup=*/true);
  EXPECT_EQ(io::ReadAllRecords<std::uint64_t>(ctx.get(), out),
            (std::vector<std::uint64_t>{1, 5}));
}

TEST(ExternalSortTest, EdgeComparators) {
  auto ctx = MakeMemTestContext();
  const std::vector<graph::Edge> edges{{3, 1}, {1, 2}, {2, 1}, {1, 1}};
  const std::string in = ctx->NewTempPath("in");
  io::WriteAllRecords(ctx.get(), in, edges);

  const std::string by_src = ctx->NewTempPath("bysrc");
  extsort::SortFile<graph::Edge, graph::EdgeBySrc>(ctx.get(), in, by_src,
                                                   graph::EdgeBySrc());
  const auto src_sorted = io::ReadAllRecords<graph::Edge>(ctx.get(), by_src);
  EXPECT_EQ(src_sorted, (std::vector<graph::Edge>{
                            {1, 1}, {1, 2}, {2, 1}, {3, 1}}));

  const std::string by_dst = ctx->NewTempPath("bydst");
  extsort::SortFile<graph::Edge, graph::EdgeByDst>(ctx.get(), in, by_dst,
                                                   graph::EdgeByDst());
  const auto dst_sorted = io::ReadAllRecords<graph::Edge>(ctx.get(), by_dst);
  EXPECT_EQ(dst_sorted, (std::vector<graph::Edge>{
                            {1, 1}, {2, 1}, {3, 1}, {1, 2}}));
}

TEST(SortingWriterTest, AccumulateAndSort) {
  auto ctx = MakeMemTestContext(/*memory_bytes=*/16 << 10);
  extsort::SortingWriter<std::uint64_t, U64Less> writer(ctx.get(), U64Less(),
                                                        /*dedup=*/true);
  util::Rng rng(3);
  for (int i = 0; i < 20'000; ++i) writer.Add(rng.Uniform(500));
  const std::string out = ctx->NewTempPath("out");
  writer.FinishInto(out);
  const auto result = io::ReadAllRecords<std::uint64_t>(ctx.get(), out);
  EXPECT_EQ(result.size(), 500u);
  EXPECT_TRUE(std::is_sorted(result.begin(), result.end()));
}

TEST(IsFileSortedTest, DetectsOrderAndStrictness) {
  auto ctx = MakeMemTestContext();
  const std::string sorted = ctx->NewTempPath("s");
  io::WriteAllRecords<std::uint64_t>(ctx.get(), sorted, {1, 2, 2, 3});
  EXPECT_TRUE((extsort::IsFileSorted<std::uint64_t, U64Less>(
      ctx.get(), sorted, U64Less())));
  EXPECT_FALSE((extsort::IsFileSorted<std::uint64_t, U64Less>(
      ctx.get(), sorted, U64Less(), /*strictly=*/true)));
  const std::string unsorted = ctx->NewTempPath("u");
  io::WriteAllRecords<std::uint64_t>(ctx.get(), unsorted, {2, 1});
  EXPECT_FALSE((extsort::IsFileSorted<std::uint64_t, U64Less>(
      ctx.get(), unsorted, U64Less())));
}

TEST(ExternalSortTest, AllEqualRecordsDedupAcrossMultiplePasses) {
  // M = 2 blocks of 4K: binary merges, several passes. Dedup must apply
  // inside every run and every pass, so all-equal input collapses early
  // instead of carrying 60K duplicates through each merge level.
  auto ctx = MakeMemTestContext(/*memory_bytes=*/8 << 10, /*block_size=*/4096);
  std::vector<std::uint64_t> values(60'000, 42);
  const std::string in = ctx->NewTempPath("in");
  const std::string out = ctx->NewTempPath("out");
  io::WriteAllRecords(ctx.get(), in, values);
  const auto before = ctx->stats();
  const auto info = extsort::SortFile<std::uint64_t, U64Less>(
      ctx.get(), in, out, U64Less(), /*dedup=*/true);
  const auto delta = ctx->stats() - before;
  EXPECT_GT(info.num_runs, 1u);
  EXPECT_EQ(io::ReadAllRecords<std::uint64_t>(ctx.get(), out),
            (std::vector<std::uint64_t>{42}));
  // Each run dedups to one record before it is spilled, so the sort
  // writes far less than it reads (the old final-pass-only dedup wrote
  // the full input at least twice).
  EXPECT_LT(delta.bytes_written, delta.bytes_read / 4) << delta.ToString();
}

TEST(ExternalSortTest, DedupShrinksIntermediateRuns) {
  // Heavy duplication (200 distinct keys in 100K records): with per-run
  // dedup every spilled run holds <= 200 records, so written bytes stay
  // a small fraction of the input.
  auto ctx = MakeMemTestContext(/*memory_bytes=*/16 << 10, /*block_size=*/4096);
  auto values = RandomValues(100'000, 13, 200);
  const std::string in = ctx->NewTempPath("in");
  const std::string out = ctx->NewTempPath("out");
  io::WriteAllRecords(ctx.get(), in, values);
  const auto before = ctx->stats();
  extsort::SortFile<std::uint64_t, U64Less>(ctx.get(), in, out, U64Less(),
                                            /*dedup=*/true);
  const auto delta = ctx->stats() - before;
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  EXPECT_EQ(io::ReadAllRecords<std::uint64_t>(ctx.get(), out), values);
  EXPECT_LT(delta.bytes_written, 100'000 * sizeof(std::uint64_t) / 2)
      << delta.ToString();
}

TEST(ExternalSortTest, FanInExactlyTwo) {
  // M = 2 blocks: MergeFanIn floors at a binary merge; many runs force
  // ceil(log2(runs)) passes through the 2-leaf loser tree.
  auto ctx = MakeMemTestContext(/*memory_bytes=*/2 << 10, /*block_size=*/1024);
  ASSERT_EQ(ctx->memory().MergeFanIn(ctx->block_size()), 2u);
  auto values = RandomValues(20'000, 17, 1u << 30);
  const std::string in = ctx->NewTempPath("in");
  const std::string out = ctx->NewTempPath("out");
  io::WriteAllRecords(ctx.get(), in, values);
  const auto info =
      extsort::SortFile<std::uint64_t, U64Less>(ctx.get(), in, out, U64Less());
  EXPECT_GT(info.num_runs, 16u);
  // Binary merging halves the run count per pass.
  std::uint64_t expected_passes = 0;
  for (std::uint64_t r = info.num_runs; r > 1; r = (r + 1) / 2) {
    ++expected_passes;
  }
  EXPECT_EQ(info.merge_passes, expected_passes);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(io::ReadAllRecords<std::uint64_t>(ctx.get(), out), values);
}

// 12-byte records never divide a 1024-byte block evenly, so records
// straddle every block boundary in runs, merges, and the output.
struct Triple {
  std::uint32_t key = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  friend bool operator==(const Triple&, const Triple&) = default;
};
static_assert(sizeof(Triple) == 12);

struct TripleByKey {
  bool operator()(const Triple& x, const Triple& y) const {
    return x.key < y.key;
  }
};

TEST(ExternalSortTest, RecordsStraddlingBlockBoundaries) {
  auto ctx = MakeMemTestContext(/*memory_bytes=*/4 << 10, /*block_size=*/1024);
  util::Rng rng(23);
  std::vector<Triple> values(30'000);
  for (auto& t : values) {
    t.key = static_cast<std::uint32_t>(rng.Uniform(1u << 20));
    t.a = t.key * 2;
    t.b = t.key ^ 0xdeadbeef;
  }
  const std::string in = ctx->NewTempPath("in");
  const std::string out = ctx->NewTempPath("out");
  io::WriteAllRecords(ctx.get(), in, values);
  const auto info = extsort::SortFile<Triple, TripleByKey>(
      ctx.get(), in, out, TripleByKey());
  EXPECT_GT(info.num_runs, 1u);
  auto result = io::ReadAllRecords<Triple>(ctx.get(), out);
  ASSERT_EQ(result.size(), values.size());
  std::stable_sort(values.begin(), values.end(), TripleByKey());
  for (std::size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(result[i].key, values[i].key) << i;
    // Payloads must travel intact with their keys across boundaries.
    ASSERT_EQ(result[i].a, result[i].key * 2) << i;
    ASSERT_EQ(result[i].b, result[i].key ^ 0xdeadbeef) << i;
  }
}

TEST(ExternalSortTest, SingleRunWritesOutputDirectly) {
  auto ctx = MakeMemTestContext(/*memory_bytes=*/1 << 20, /*block_size=*/4096);
  auto values = RandomValues(10'000, 29, 1u << 30);  // 80 KB: one run
  const std::string in = ctx->NewTempPath("in");
  const std::string out = ctx->NewTempPath("out");
  io::WriteAllRecords(ctx.get(), in, values);
  const auto before = ctx->stats();
  const auto info =
      extsort::SortFile<std::uint64_t, U64Less>(ctx.get(), in, out, U64Less());
  const auto delta = ctx->stats() - before;
  EXPECT_EQ(info.num_runs, 1u);
  EXPECT_EQ(info.merge_passes, 0u);
  // One scan in (the run formation read), one scan out (the in-memory
  // run written straight to the output — no run file, no rename).
  const std::uint64_t file_blocks =
      (values.size() * sizeof(std::uint64_t) + 4095) / 4096;
  EXPECT_EQ(delta.total_reads(), file_blocks);
  EXPECT_EQ(delta.total_writes(), file_blocks);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(io::ReadAllRecords<std::uint64_t>(ctx.get(), out), values);
}

TEST(ExternalSortTest, RandomizedPropertyVsStdSort) {
  // Randomized geometry sweep: every (budget, block, size, range) draw
  // must agree with std::sort and satisfy IsFileSorted; dedup draws must
  // agree with sort+unique and be strictly sorted.
  util::Rng rng(2026);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t block = 512u << rng.Uniform(3);        // 512..2K
    const std::uint64_t memory = (2 + rng.Uniform(30)) * block;
    const std::size_t count = 500 + rng.Uniform(40'000);
    const std::uint64_t range = 1 + rng.Uniform(1u << 16);
    const bool dedup = rng.Uniform(2) == 1;
    auto ctx = MakeMemTestContext(memory, block);
    auto values = RandomValues(count, rng.Next(), range);
    const std::string in = ctx->NewTempPath("in");
    const std::string out = ctx->NewTempPath("out");
    io::WriteAllRecords(ctx.get(), in, values);
    extsort::SortFile<std::uint64_t, U64Less>(ctx.get(), in, out, U64Less(),
                                              dedup);
    EXPECT_TRUE((extsort::IsFileSorted<std::uint64_t, U64Less>(
        ctx.get(), out, U64Less(), /*strictly=*/dedup)))
        << "trial " << trial << " block=" << block << " mem=" << memory
        << " count=" << count << " dedup=" << dedup;
    std::sort(values.begin(), values.end());
    if (dedup) {
      values.erase(std::unique(values.begin(), values.end()), values.end());
    }
    EXPECT_EQ(io::ReadAllRecords<std::uint64_t>(ctx.get(), out), values)
        << "trial " << trial;
  }
}

TEST(ExternalSortTest, SortWithPrefetchEnabledMatches) {
  io::IoContextOptions options;
  options.block_size = 4096;
  options.memory_bytes = 16 << 10;
  options.prefetch = true;
  options.prefetch_depth = 2;
  io::IoContext ctx(options);
  auto values = RandomValues(80'000, 31, 1u << 31);
  const std::string in = ctx.NewTempPath("in");
  const std::string out = ctx.NewTempPath("out");
  io::WriteAllRecords(&ctx, in, values);
  const auto info =
      extsort::SortFile<std::uint64_t, U64Less>(&ctx, in, out, U64Less());
  EXPECT_GT(info.num_runs, 1u);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(io::ReadAllRecords<std::uint64_t>(&ctx, out), values);
}

// Parameterized sweep: sort correctness across budget/block combinations.
struct SortSweepParam {
  std::uint64_t memory;
  std::size_t block;
  std::size_t count;
};

class ExternalSortSweep : public ::testing::TestWithParam<SortSweepParam> {};

TEST_P(ExternalSortSweep, SortedAndPermutationPreserved) {
  const auto param = GetParam();
  auto ctx = MakeMemTestContext(param.memory, param.block);
  auto values = RandomValues(param.count, param.memory ^ param.count, 1000);
  const std::string in = ctx->NewTempPath("in");
  const std::string out = ctx->NewTempPath("out");
  io::WriteAllRecords(ctx.get(), in, values);
  extsort::SortFile<std::uint64_t, U64Less>(ctx.get(), in, out, U64Less());
  auto result = io::ReadAllRecords<std::uint64_t>(ctx.get(), out);
  ASSERT_EQ(result.size(), values.size());
  EXPECT_TRUE(std::is_sorted(result.begin(), result.end()));
  std::sort(values.begin(), values.end());
  EXPECT_EQ(result, values);
}

INSTANTIATE_TEST_SUITE_P(
    BudgetsAndBlocks, ExternalSortSweep,
    ::testing::Values(SortSweepParam{8 << 10, 4096, 10'000},
                      SortSweepParam{16 << 10, 4096, 30'000},
                      SortSweepParam{64 << 10, 4096, 30'000},
                      SortSweepParam{8 << 10, 1024, 5'000},
                      SortSweepParam{1 << 20, 16384, 100'000},
                      SortSweepParam{2 << 10, 1024, 2'000}));

}  // namespace
}  // namespace extscc
