#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "extsort/external_sorter.h"
#include "graph/graph_types.h"
#include "io/record_stream.h"
#include "test_util.h"
#include "util/random.h"

namespace extscc {
namespace {

using testing::MakeTestContext;

struct U64Less {
  bool operator()(std::uint64_t a, std::uint64_t b) const { return a < b; }
};

std::vector<std::uint64_t> RandomValues(std::size_t n, std::uint64_t seed,
                                        std::uint64_t bound) {
  util::Rng rng(seed);
  std::vector<std::uint64_t> out(n);
  for (auto& v : out) v = rng.Uniform(bound);
  return out;
}

TEST(ExternalSortTest, MatchesStdSortSingleRun) {
  auto ctx = MakeTestContext(/*memory_bytes=*/1 << 20);
  auto values = RandomValues(1000, 42, 1 << 30);
  const std::string in = ctx->NewTempPath("in");
  const std::string out = ctx->NewTempPath("out");
  io::WriteAllRecords(ctx.get(), in, values);
  const auto info =
      extsort::SortFile<std::uint64_t, U64Less>(ctx.get(), in, out, U64Less());
  EXPECT_EQ(info.num_records, 1000u);
  EXPECT_EQ(info.num_runs, 1u);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(io::ReadAllRecords<std::uint64_t>(ctx.get(), out), values);
}

TEST(ExternalSortTest, MatchesStdSortManyRuns) {
  // Budget of 16 KB over 8-byte records -> 2K-record runs; 100K records
  // force a multi-run merge (and, with 4K blocks, a modest fan-in).
  auto ctx = MakeTestContext(/*memory_bytes=*/16 << 10);
  auto values = RandomValues(100'000, 7, 1u << 31);
  const std::string in = ctx->NewTempPath("in");
  const std::string out = ctx->NewTempPath("out");
  io::WriteAllRecords(ctx.get(), in, values);
  const auto info =
      extsort::SortFile<std::uint64_t, U64Less>(ctx.get(), in, out, U64Less());
  EXPECT_GT(info.num_runs, 1u);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(io::ReadAllRecords<std::uint64_t>(ctx.get(), out), values);
}

TEST(ExternalSortTest, TinyBudgetMultiPassMerge) {
  // M = 2 blocks of 4K: binary merges, multiple passes.
  auto ctx = MakeTestContext(/*memory_bytes=*/8 << 10, /*block_size=*/4096);
  auto values = RandomValues(50'000, 11, 1000);
  const std::string in = ctx->NewTempPath("in");
  const std::string out = ctx->NewTempPath("out");
  io::WriteAllRecords(ctx.get(), in, values);
  const auto info =
      extsort::SortFile<std::uint64_t, U64Less>(ctx.get(), in, out, U64Less());
  EXPECT_GT(info.merge_passes, 1u) << "tiny budget must force multiple passes";
  std::sort(values.begin(), values.end());
  EXPECT_EQ(io::ReadAllRecords<std::uint64_t>(ctx.get(), out), values);
}

TEST(ExternalSortTest, EmptyInput) {
  auto ctx = MakeTestContext();
  const std::string in = ctx->NewTempPath("in");
  const std::string out = ctx->NewTempPath("out");
  io::WriteAllRecords<std::uint64_t>(ctx.get(), in, {});
  const auto info =
      extsort::SortFile<std::uint64_t, U64Less>(ctx.get(), in, out, U64Less());
  EXPECT_EQ(info.num_records, 0u);
  EXPECT_TRUE(io::ReadAllRecords<std::uint64_t>(ctx.get(), out).empty());
}

TEST(ExternalSortTest, DedupCollapsesEqualRecords) {
  auto ctx = MakeTestContext(/*memory_bytes=*/16 << 10);
  std::vector<std::uint64_t> values;
  for (int rep = 0; rep < 50; ++rep) {
    for (std::uint64_t v = 0; v < 200; ++v) values.push_back(v);
  }
  const std::string in = ctx->NewTempPath("in");
  const std::string out = ctx->NewTempPath("out");
  io::WriteAllRecords(ctx.get(), in, values);
  extsort::SortFile<std::uint64_t, U64Less>(ctx.get(), in, out, U64Less(),
                                            /*dedup=*/true);
  const auto result = io::ReadAllRecords<std::uint64_t>(ctx.get(), out);
  ASSERT_EQ(result.size(), 200u);
  for (std::uint64_t v = 0; v < 200; ++v) EXPECT_EQ(result[v], v);
}

TEST(ExternalSortTest, DedupOnSingleRun) {
  auto ctx = MakeTestContext();
  const std::string in = ctx->NewTempPath("in");
  const std::string out = ctx->NewTempPath("out");
  io::WriteAllRecords<std::uint64_t>(ctx.get(), in, {5, 1, 5, 1, 5});
  extsort::SortFile<std::uint64_t, U64Less>(ctx.get(), in, out, U64Less(),
                                            /*dedup=*/true);
  EXPECT_EQ(io::ReadAllRecords<std::uint64_t>(ctx.get(), out),
            (std::vector<std::uint64_t>{1, 5}));
}

TEST(ExternalSortTest, EdgeComparators) {
  auto ctx = MakeTestContext();
  const std::vector<graph::Edge> edges{{3, 1}, {1, 2}, {2, 1}, {1, 1}};
  const std::string in = ctx->NewTempPath("in");
  io::WriteAllRecords(ctx.get(), in, edges);

  const std::string by_src = ctx->NewTempPath("bysrc");
  extsort::SortFile<graph::Edge, graph::EdgeBySrc>(ctx.get(), in, by_src,
                                                   graph::EdgeBySrc());
  const auto src_sorted = io::ReadAllRecords<graph::Edge>(ctx.get(), by_src);
  EXPECT_EQ(src_sorted, (std::vector<graph::Edge>{
                            {1, 1}, {1, 2}, {2, 1}, {3, 1}}));

  const std::string by_dst = ctx->NewTempPath("bydst");
  extsort::SortFile<graph::Edge, graph::EdgeByDst>(ctx.get(), in, by_dst,
                                                   graph::EdgeByDst());
  const auto dst_sorted = io::ReadAllRecords<graph::Edge>(ctx.get(), by_dst);
  EXPECT_EQ(dst_sorted, (std::vector<graph::Edge>{
                            {1, 1}, {2, 1}, {3, 1}, {1, 2}}));
}

TEST(SortingWriterTest, AccumulateAndSort) {
  auto ctx = MakeTestContext(/*memory_bytes=*/16 << 10);
  extsort::SortingWriter<std::uint64_t, U64Less> writer(ctx.get(), U64Less(),
                                                        /*dedup=*/true);
  util::Rng rng(3);
  for (int i = 0; i < 20'000; ++i) writer.Add(rng.Uniform(500));
  const std::string out = ctx->NewTempPath("out");
  writer.FinishInto(out);
  const auto result = io::ReadAllRecords<std::uint64_t>(ctx.get(), out);
  EXPECT_EQ(result.size(), 500u);
  EXPECT_TRUE(std::is_sorted(result.begin(), result.end()));
}

TEST(IsFileSortedTest, DetectsOrderAndStrictness) {
  auto ctx = MakeTestContext();
  const std::string sorted = ctx->NewTempPath("s");
  io::WriteAllRecords<std::uint64_t>(ctx.get(), sorted, {1, 2, 2, 3});
  EXPECT_TRUE((extsort::IsFileSorted<std::uint64_t, U64Less>(
      ctx.get(), sorted, U64Less())));
  EXPECT_FALSE((extsort::IsFileSorted<std::uint64_t, U64Less>(
      ctx.get(), sorted, U64Less(), /*strictly=*/true)));
  const std::string unsorted = ctx->NewTempPath("u");
  io::WriteAllRecords<std::uint64_t>(ctx.get(), unsorted, {2, 1});
  EXPECT_FALSE((extsort::IsFileSorted<std::uint64_t, U64Less>(
      ctx.get(), unsorted, U64Less())));
}

// Parameterized sweep: sort correctness across budget/block combinations.
struct SortSweepParam {
  std::uint64_t memory;
  std::size_t block;
  std::size_t count;
};

class ExternalSortSweep : public ::testing::TestWithParam<SortSweepParam> {};

TEST_P(ExternalSortSweep, SortedAndPermutationPreserved) {
  const auto param = GetParam();
  auto ctx = MakeTestContext(param.memory, param.block);
  auto values = RandomValues(param.count, param.memory ^ param.count, 1000);
  const std::string in = ctx->NewTempPath("in");
  const std::string out = ctx->NewTempPath("out");
  io::WriteAllRecords(ctx.get(), in, values);
  extsort::SortFile<std::uint64_t, U64Less>(ctx.get(), in, out, U64Less());
  auto result = io::ReadAllRecords<std::uint64_t>(ctx.get(), out);
  ASSERT_EQ(result.size(), values.size());
  EXPECT_TRUE(std::is_sorted(result.begin(), result.end()));
  std::sort(values.begin(), values.end());
  EXPECT_EQ(result, values);
}

INSTANTIATE_TEST_SUITE_P(
    BudgetsAndBlocks, ExternalSortSweep,
    ::testing::Values(SortSweepParam{8 << 10, 4096, 10'000},
                      SortSweepParam{16 << 10, 4096, 30'000},
                      SortSweepParam{64 << 10, 4096, 30'000},
                      SortSweepParam{8 << 10, 1024, 5'000},
                      SortSweepParam{1 << 20, 16384, 100'000},
                      SortSweepParam{2 << 10, 1024, 2'000}));

}  // namespace
}  // namespace extscc
