// Crash-safety unit tests: the delta log's torn-tail recovery swept at
// EVERY byte offset of the last record, the checkpoint manifest's
// round-trip/validation contract, the durable-rename publish
// primitive, crash-spec parsing, orphan scratch-root reaping, and the
// promise that durability costs live only in the sync/checkpoint
// counters. The process-kill side of crash safety (spawning
// extscc_tool and dying at seeded crash points) lives in
// crash_test.cc; this suite covers everything testable in-process.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/ext_scc.h"
#include "dyn/delta_log.h"
#include "graph/graph_types.h"
#include "io/crash_point.h"
#include "io/durability.h"
#include "io/io_context.h"
#include "io/storage.h"
#include "test_util.h"
#include "util/status.h"

namespace extscc {
namespace {

namespace fs = std::filesystem;
using graph::Edge;

// Delta-log and checkpoint files live beside artifacts on the REAL
// filesystem (the posix base device), never on scratch — so these
// tests can truncate/corrupt them byte by byte regardless of the CI
// matrix's scratch-device override.
std::unique_ptr<io::IoContext> MakeContext(std::size_t block_size) {
  return testing::MakeTestContext(1 << 20, block_size);
}

fs::path FreshDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<Edge> SomeEdges(std::uint32_t n, std::uint32_t salt) {
  std::vector<Edge> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back(Edge{salt + i, salt + i * 7 + 1});
  }
  return out;
}

std::vector<char> Slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void Spit(const fs::path& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---- torn-tail recovery ---------------------------------------------

// The satellite regression test: truncate the log at EVERY byte offset
// inside the last record and require (a) the scan to report exactly
// the intact prefix, (b) recovery to rewrite the log into a clean one
// that strict reads and further appends accept.
TEST(DurabilityTest, TornTailTruncationSweepEveryByteOffset) {
  constexpr std::size_t kBlock = 512;
  auto context = MakeContext(kBlock);
  const fs::path dir = FreshDir("durability_torn_sweep");
  const std::string log = (dir / "art.dlog").string();

  const auto first = SomeEdges(30, 1000);    // 264 bytes -> 1 block
  const auto second = SomeEdges(100, 5000);  // 824 bytes -> 2 blocks
  ASSERT_TRUE(dyn::WriteDeltaLog(context.get(), log, 7, first).ok());
  ASSERT_TRUE(dyn::AppendDeltaLog(context.get(), log, 7, second).ok());

  const std::vector<char> pristine = Slurp(log);
  // header block + 1 record block + 2 record blocks
  ASSERT_EQ(pristine.size(), 4 * kBlock);
  const std::size_t last_record_start = 2 * kBlock;
  // The record's REAL bytes end here; the rest of its last block is
  // zero padding. A cut that only sheds padding loses nothing — the
  // record still parses, so the log is clean, not torn.
  const std::size_t data_end =
      last_record_start + sizeof(dyn::DeltaRecordHeader) +
      second.size() * sizeof(Edge);
  ASSERT_LT(data_end, pristine.size());

  std::vector<Edge> both = first;
  both.insert(both.end(), second.begin(), second.end());

  for (std::size_t cut = last_record_start; cut < pristine.size(); ++cut) {
    Spit(log, pristine);
    fs::resize_file(log, cut);

    const bool record_survives = cut >= data_end;
    // Exactly at the record boundary the file simply ends after the
    // first record — clean EOF, not a torn tail.
    const bool expect_torn = !record_survives && cut != last_record_start;
    const std::vector<Edge>& expect = record_survives ? both : first;

    auto scan = dyn::ScanDeltaLog(context.get(), log, 7);
    ASSERT_TRUE(scan.ok()) << "cut=" << cut << ": "
                           << scan.status().ToString();
    EXPECT_TRUE(scan.value().exists) << "cut=" << cut;
    EXPECT_FALSE(scan.value().stale) << "cut=" << cut;
    EXPECT_EQ(scan.value().torn, expect_torn) << "cut=" << cut;
    ASSERT_EQ(scan.value().edges.size(), expect.size()) << "cut=" << cut;
    for (std::size_t i = 0; i < expect.size(); ++i) {
      ASSERT_EQ(scan.value().edges[i], expect[i]) << "cut=" << cut;
    }

    // A full recovery rewrite at every offset would fsync thousands of
    // times; sample it (plus both boundary cuts) — the scan above is
    // the per-offset invariant.
    if (cut % 97 != 0 && cut != last_record_start &&
        cut != pristine.size() - 1) {
      continue;
    }
    bool recovered = false;
    auto healed = dyn::RecoverDeltaLog(context.get(), log, 7, &recovered);
    ASSERT_TRUE(healed.ok()) << "cut=" << cut << ": "
                             << healed.status().ToString();
    EXPECT_EQ(recovered, expect_torn) << "cut=" << cut;
    EXPECT_EQ(healed.value().size(), expect.size()) << "cut=" << cut;
    // After recovery the strict reader must accept the log...
    auto strict = dyn::ReadDeltaLog(context.get(), log, 7);
    ASSERT_TRUE(strict.ok()) << "cut=" << cut << ": "
                             << strict.status().ToString();
    // ...and an append must extend the healed prefix.
    ASSERT_TRUE(dyn::AppendDeltaLog(context.get(), log, 7, second).ok())
        << "cut=" << cut;
    auto after = dyn::ReadDeltaLog(context.get(), log, 7);
    ASSERT_TRUE(after.ok()) << "cut=" << cut;
    EXPECT_EQ(after.value().size(), expect.size() + second.size())
        << "cut=" << cut;
  }
}

TEST(DurabilityTest, TornTailStrictReadIsCorruption) {
  constexpr std::size_t kBlock = 512;
  auto context = MakeContext(kBlock);
  const fs::path dir = FreshDir("durability_torn_strict");
  const std::string log = (dir / "art.dlog").string();
  ASSERT_TRUE(
      dyn::WriteDeltaLog(context.get(), log, 3, SomeEdges(200, 1)).ok());
  // Cut into the payload proper (past the padding) so the record is
  // genuinely damaged.
  fs::resize_file(log, fs::file_size(log) - kBlock - 5);
  auto strict = dyn::ReadDeltaLog(context.get(), log, 3);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), util::StatusCode::kCorruption);
}

TEST(DurabilityTest, AppendOntoTornLogFoldsValidPrefix) {
  constexpr std::size_t kBlock = 512;
  auto context = MakeContext(kBlock);
  const fs::path dir = FreshDir("durability_torn_append");
  const std::string log = (dir / "art.dlog").string();
  const auto first = SomeEdges(20, 10);
  const auto lost = SomeEdges(90, 20);
  const auto batch = SomeEdges(40, 30);
  ASSERT_TRUE(dyn::WriteDeltaLog(context.get(), log, 9, first).ok());
  ASSERT_TRUE(dyn::AppendDeltaLog(context.get(), log, 9, lost).ok());
  fs::resize_file(log, fs::file_size(log) - kBlock - 17);  // tear `lost`
  ASSERT_TRUE(dyn::AppendDeltaLog(context.get(), log, 9, batch).ok());
  auto edges = dyn::ReadDeltaLog(context.get(), log, 9);
  ASSERT_TRUE(edges.ok()) << edges.status().ToString();
  ASSERT_EQ(edges.value().size(), first.size() + batch.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(edges.value()[i], first[i]);
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(edges.value()[first.size() + i], batch[i]);
  }
}

TEST(DurabilityTest, DamagedHeaderIsCorruptionNotSelfHealing) {
  auto context = MakeContext(512);
  const fs::path dir = FreshDir("durability_bad_header");
  const std::string log = (dir / "art.dlog").string();
  ASSERT_TRUE(
      dyn::WriteDeltaLog(context.get(), log, 1, SomeEdges(5, 0)).ok());
  auto bytes = Slurp(log);
  bytes[3] ^= 0x40;  // inside the magic
  Spit(log, bytes);
  auto scan = dyn::ScanDeltaLog(context.get(), log, 1);
  ASSERT_FALSE(scan.ok());
  EXPECT_EQ(scan.status().code(), util::StatusCode::kCorruption);
  auto healed = dyn::RecoverDeltaLog(context.get(), log, 1);
  ASSERT_FALSE(healed.ok());
  EXPECT_EQ(healed.status().code(), util::StatusCode::kCorruption);
}

// ---- durability accounting ------------------------------------------

TEST(DurabilityTest, DeltaLogSyncsAreCountedOutsideModelColumns) {
  auto context = MakeContext(4096);
  const fs::path dir = FreshDir("durability_sync_counts");
  const std::string log = (dir / "art.dlog").string();
  const auto before = context->stats();
  ASSERT_TRUE(
      dyn::WriteDeltaLog(context.get(), log, 2, SomeEdges(100, 4)).ok());
  ASSERT_TRUE(
      dyn::AppendDeltaLog(context.get(), log, 2, SomeEdges(50, 9)).ok());
  const auto delta = context->stats() - before;
  // Durable create (file fsync + dir fsync) plus the append's fsync.
  EXPECT_GE(delta.sync_calls, 3u);
  // Syncs are never model I/Os: checkpoint counters untouched, and the
  // block reads/writes are exactly the log's blocks, not inflated by
  // the fsyncs.
  EXPECT_EQ(delta.checkpoint_writes, 0u);
  EXPECT_EQ(delta.checkpoint_reads, 0u);
}

TEST(DurabilityTest, DurableRenamePublishesAndCountsOneDirSync) {
  auto context = MakeContext(4096);
  const fs::path dir = FreshDir("durability_rename");
  const std::string tmp = (dir / "artifact.tmp").string();
  const std::string final_path = (dir / "artifact").string();
  Spit(tmp, {'h', 'i'});
  const auto before = context->stats();
  ASSERT_TRUE(io::DurableRename(context.get(), tmp, final_path).ok());
  EXPECT_FALSE(fs::exists(tmp));
  EXPECT_TRUE(fs::exists(final_path));
  EXPECT_EQ((context->stats() - before).sync_calls, 1u);
  EXPECT_EQ((context->stats() - before).total_ios(), 0u);
}

TEST(DurabilityTest, ParentDirOfContract) {
  EXPECT_EQ(io::ParentDirOf("/a/b/c"), "/a/b");
  EXPECT_EQ(io::ParentDirOf("/top"), "/");
  EXPECT_EQ(io::ParentDirOf("relative"), ".");
}

// ---- crash-spec parsing ---------------------------------------------

TEST(DurabilityTest, ParseCrashSpecAcceptsOrdinalAndTagForms) {
  io::CrashSpec spec;
  EXPECT_EQ(io::ParseCrashSpec("7", &spec), "");
  EXPECT_EQ(spec.tag, "");
  EXPECT_EQ(spec.ordinal, 7u);
  EXPECT_EQ(io::ParseCrashSpec("publish.rename:12", &spec), "");
  EXPECT_EQ(spec.tag, "publish.rename");
  EXPECT_EQ(spec.ordinal, 12u);
}

TEST(DurabilityTest, ParseCrashSpecRejectsMalformedSpecs) {
  io::CrashSpec spec;
  EXPECT_NE(io::ParseCrashSpec("", &spec), "");
  EXPECT_NE(io::ParseCrashSpec("abc", &spec), "");
  EXPECT_NE(io::ParseCrashSpec(":3", &spec), "");
  EXPECT_NE(io::ParseCrashSpec("tag:", &spec), "");
  EXPECT_NE(io::ParseCrashSpec("tag:0", &spec), "");
}

TEST(DurabilityTest, DisarmedCrashPointsOnlyCount) {
  const std::uint64_t before = io::CrashPointsPassed();
  io::CrashPointHit("durability.test.site");
  EXPECT_EQ(io::CrashPointsPassed(), before + 1);
}

// ---- orphan scratch-root reaping ------------------------------------

TEST(DurabilityTest, ReapsDeadOwnersKeepsLiveOnes) {
  const fs::path parent = FreshDir("durability_reap");

  // A pid that is guaranteed dead AND guaranteed once-valid: a child
  // we already waited on.
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) _exit(0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(child, &wstatus, 0), child);
  const long dead = static_cast<long>(child);
  const long live = static_cast<long>(getpid());

  auto make_root = [&](const std::string& name, long pid_file_owner) {
    fs::create_directories(parent / name);
    std::ofstream(parent / name / "scratch.bin") << "leftovers";
    if (pid_file_owner != 0) {
      std::ofstream(parent / name / ".pid") << pid_file_owner << "\n";
    }
  };
  make_root("extscc_" + std::to_string(dead) + "_0", 0);     // reaped
  make_root("extscc_" + std::to_string(live) + "_5", 0);     // ours: kept
  make_root("extscc_" + std::to_string(live) + "_7", dead);  // .pid wins
  make_root("extscc_" + std::to_string(dead) + "_1", live);  // .pid wins
  make_root("not_a_session_root", 0);                        // ignored

  EXPECT_EQ(io::ReapOrphanScratchRoots(parent.string()), 2u);
  EXPECT_FALSE(fs::exists(parent / ("extscc_" + std::to_string(dead) + "_0")));
  EXPECT_TRUE(fs::exists(parent / ("extscc_" + std::to_string(live) + "_5")));
  EXPECT_FALSE(fs::exists(parent / ("extscc_" + std::to_string(live) + "_7")));
  EXPECT_TRUE(fs::exists(parent / ("extscc_" + std::to_string(dead) + "_1")));
  EXPECT_TRUE(fs::exists(parent / "not_a_session_root"));
}

// ---- checkpoint manifest --------------------------------------------

class CheckpointManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    context_ = MakeContext(4096);
    dir_ = FreshDir("durability_ckpt");
    ckpt_ = std::make_unique<core::CheckpointSession>(
        context_.get(), dir_.string(), /*data_version=*/42);
    // One completed contraction level: the manifest obligates the four
    // level files plus the live contracted edge file.
    state_.phase = core::CheckpointSession::kContracting;
    state_.data_version = 42;
    state_.block_size = 4096;
    state_.levels_done = 1;
    state_.current_num_nodes = 11;
    state_.current_num_edges = 23;
    state_.contraction_seconds = 1.5;
    core::ContractionIterationStats it;
    it.level = 0;
    it.nodes = 64;
    it.cover_nodes = 11;
    state_.iterations.push_back(it);
    for (const char* kind : {"ein", "eout", "cover", "removed", "enext"}) {
      files_.push_back(ckpt_->LevelPath(0, kind));
      std::ofstream(files_.back(), std::ios::binary) << kind << "-data";
    }
  }

  std::unique_ptr<io::IoContext> context_;
  fs::path dir_;
  std::unique_ptr<core::CheckpointSession> ckpt_;
  core::CheckpointSession::ResumeState state_;
  std::vector<std::string> files_;
};

TEST_F(CheckpointManifestTest, SaveLoadRoundTripWithCounters) {
  const auto before = context_->stats();
  ASSERT_TRUE(ckpt_->Save(state_, files_).ok());
  const auto after_save = context_->stats() - before;
  EXPECT_EQ(after_save.checkpoint_writes, 1u);
  // 5 data-file fsyncs + manifest fsync + the publish's dir fsync.
  EXPECT_GE(after_save.sync_calls, 7u);
  EXPECT_EQ(after_save.total_ios(), 0u)
      << "checkpoint traffic leaked into the model I/O columns";

  auto loaded = ckpt_->Load();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((context_->stats() - before).checkpoint_reads, 1u);
  const auto& st = loaded.value();
  EXPECT_EQ(st.phase, core::CheckpointSession::kContracting);
  EXPECT_EQ(st.data_version, 42u);
  EXPECT_EQ(st.block_size, 4096u);
  EXPECT_EQ(st.levels_done, 1u);
  EXPECT_EQ(st.current_num_nodes, 11u);
  EXPECT_EQ(st.current_num_edges, 23u);
  EXPECT_DOUBLE_EQ(st.contraction_seconds, 1.5);
  ASSERT_EQ(st.iterations.size(), 1u);
  EXPECT_EQ(st.iterations[0].nodes, 64u);
  EXPECT_EQ(st.iterations[0].cover_nodes, 11u);
}

TEST_F(CheckpointManifestTest, MissingManifestIsNotFound) {
  auto loaded = ckpt_->Load();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kNotFound);
}

TEST_F(CheckpointManifestTest, CorruptManifestIsCorruption) {
  ASSERT_TRUE(ckpt_->Save(state_, files_).ok());
  auto bytes = Slurp(ckpt_->ManifestPath());
  bytes[bytes.size() / 2] ^= 0x01;
  Spit(ckpt_->ManifestPath(), bytes);
  auto loaded = ckpt_->Load();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kCorruption);
}

TEST_F(CheckpointManifestTest, ResizedDataFileIsFailedPrecondition) {
  ASSERT_TRUE(ckpt_->Save(state_, files_).ok());
  fs::resize_file(files_[0], fs::file_size(files_[0]) - 1);
  auto loaded = ckpt_->Load();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST_F(CheckpointManifestTest, MissingDataFileIsFailedPrecondition) {
  ASSERT_TRUE(ckpt_->Save(state_, files_).ok());
  fs::remove(files_[2]);
  auto loaded = ckpt_->Load();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST_F(CheckpointManifestTest, FinishRemovesManifestAndPhaseFiles) {
  ASSERT_TRUE(ckpt_->Save(state_, files_).ok());
  ckpt_->Finish(/*num_levels=*/1);
  EXPECT_FALSE(fs::exists(ckpt_->ManifestPath()));
  for (const auto& f : files_) EXPECT_FALSE(fs::exists(f)) << f;
}

TEST(DurabilityTest, SolveDataVersionBindsOptionsAndGeometryNotPaths) {
  auto context = MakeContext(4096);
  graph::DiskGraph a;
  a.num_nodes = 100;
  a.num_edges = 400;
  a.node_path = "/scratch/run1/nodes";
  a.edge_path = "/scratch/run1/edges";
  graph::DiskGraph b = a;
  // Same shape through DIFFERENT per-session scratch paths — exactly
  // what a crashed solve and its resume look like.
  b.node_path = "/scratch/run2/nodes";
  b.edge_path = "/scratch/run2/edges";
  const auto opt = core::ExtSccOptions::Optimized();
  EXPECT_EQ(core::SolveDataVersion(a, opt, 4096),
            core::SolveDataVersion(b, opt, 4096));
  EXPECT_NE(core::SolveDataVersion(a, opt, 4096),
            core::SolveDataVersion(a, opt, 8192));
  EXPECT_NE(core::SolveDataVersion(a, opt, 4096),
            core::SolveDataVersion(a, core::ExtSccOptions::Basic(), 4096));
  graph::DiskGraph c = a;
  c.num_nodes = 101;
  EXPECT_NE(core::SolveDataVersion(a, opt, 4096),
            core::SolveDataVersion(c, opt, 4096));
}

}  // namespace
}  // namespace extscc
