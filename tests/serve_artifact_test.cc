// Serve-artifact durability: the on-disk format round-trips the full
// solve byte for byte, rejects foreign/corrupt/truncated files with
// typed errors, and — the load-bearing claim — NO injected bit flip or
// device fault ever surfaces as a wrong query answer. Detection
// (kCorruption) or a correct answer are the only allowed outcomes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <functional>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/ext_scc.h"
#include "gen/classic_graphs.h"
#include "graph/digraph.h"
#include "graph/disk_graph.h"
#include "graph/graph_types.h"
#include "io/checksum.h"
#include "io/record_stream.h"
#include "io/storage.h"
#include "serve/artifact.h"
#include "serve/artifact_format.h"
#include "serve/index_builder.h"
#include "serve/query_engine.h"
#include "test_util.h"
#include "util/random.h"
#include "util/status.h"

namespace extscc {
namespace {

namespace fs = std::filesystem;
using graph::Edge;
using graph::SccEntry;
using serve::ArtifactReader;
using serve::Query;
using serve::QueryAnswer;
using serve::QueryType;
using testing::MakeTestContext;

// One built artifact + its ground truth, shared by the corruption
// sweeps. The graph is small but spans many 4K blocks, so flips land in
// every region (preamble, payload, meta, footer).
struct BuiltArtifact {
  std::unique_ptr<io::IoContext> context;
  std::string path;
  std::vector<Edge> edges;
  std::vector<SccEntry> solver_labels;  // reference node→SCC map
};

BuiltArtifact BuildTestArtifact(std::uint32_t nodes, std::uint64_t num_edges,
                                std::uint64_t seed) {
  BuiltArtifact out;
  out.context = MakeTestContext(4 << 20);
  out.edges = gen::RandomDigraphEdges(nodes, num_edges, seed);
  const auto g = graph::MakeDiskGraph(out.context.get(), out.edges);
  // The artifact is a user-facing file: a real filesystem path on the
  // base device, NOT a scratch path (virtual under the mem/striped
  // test matrices), so the corruption sweeps can patch its bytes with
  // ordinary file ops.
  out.path = ::testing::TempDir() + "/extscc_artifact_" +
             std::to_string(nodes) + "_" + std::to_string(seed) + ".art";
  auto built =
      serve::BuildArtifact(out.context.get(), g, out.path, {});
  EXPECT_TRUE(built.ok()) << built.status().ToString();

  // Independent reference solve, canonicalized the way build-index does
  // (labels rewritten dense-by-first-occurrence in node order) — the
  // artifact's map section must match these bytes exactly.
  const std::string scc_path = out.context->NewTempPath("ref_scc");
  auto solved = core::RunExtScc(out.context.get(), g, scc_path,
                                core::ExtSccOptions::Optimized());
  EXPECT_TRUE(solved.ok()) << solved.status().ToString();
  out.solver_labels =
      io::ReadAllRecords<SccEntry>(out.context.get(), scc_path);
  std::vector<graph::SccId> canon;
  graph::SccId next = 0;
  for (SccEntry& e : out.solver_labels) {
    while (canon.size() <= e.scc) canon.push_back(graph::kInvalidScc);
    if (canon[e.scc] == graph::kInvalidScc) canon[e.scc] = next++;
    e.scc = canon[e.scc];
  }
  return out;
}

// Every node queried once (stat + a reach against a fixed pivot): a
// batch that forces the sweep to cover the whole map section, so a
// payload flip cannot hide behind early exit.
std::vector<Query> FullCoverageQueries(const BuiltArtifact& built) {
  std::vector<Query> queries;
  for (const SccEntry& e : built.solver_labels) {
    queries.push_back({QueryType::kSccStat, e.node, 0});
    queries.push_back({QueryType::kReachable, e.node,
                       built.solver_labels.front().node});
  }
  return queries;
}

// ---- Round trip ------------------------------------------------------

TEST(ServeArtifactTest, RoundTripMatchesSolveAndOracle) {
  auto built = BuildTestArtifact(600, 2400, 11);
  auto opened = ArtifactReader::Open(built.context.get(), built.path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const ArtifactReader reader = std::move(opened).value();

  // The map section is the canonicalized solver output, byte for byte
  // and in node order.
  serve::SccMapScanner scan = reader.OpenNodeSccScan();
  std::vector<SccEntry> from_artifact;
  SccEntry entry;
  while (scan.Next(&entry)) from_artifact.push_back(entry);
  ASSERT_TRUE(scan.status().ok()) << scan.status().ToString();
  ASSERT_EQ(from_artifact.size(), built.solver_labels.size());
  for (std::size_t i = 0; i < from_artifact.size(); ++i) {
    EXPECT_EQ(from_artifact[i].node, built.solver_labels[i].node);
    EXPECT_EQ(from_artifact[i].scc, built.solver_labels[i].scc);
  }

  // Summary and per-SCC sizes against the in-memory oracle.
  const auto oracle = testing::Oracle(built.edges);
  const auto oracle_sizes = oracle.SortedComponentSizes();
  EXPECT_EQ(reader.num_sccs(), oracle_sizes.size());
  EXPECT_EQ(reader.summary().num_sccs, oracle_sizes.size());
  EXPECT_EQ(reader.summary().graph_nodes, built.solver_labels.size());
  EXPECT_EQ(reader.summary().largest_scc_size, oracle.LargestComponent());
  std::vector<std::uint64_t> artifact_sizes;
  std::uint64_t singletons = 0, total = 0;
  for (std::uint64_t s = 0; s < reader.num_sccs(); ++s) {
    const std::uint64_t size =
        reader.scc_size(static_cast<graph::SccId>(s));
    artifact_sizes.push_back(size);
    if (size == 1) ++singletons;
    total += size;
  }
  std::sort(artifact_sizes.begin(), artifact_sizes.end(),
            std::greater<std::uint64_t>());
  EXPECT_EQ(artifact_sizes, oracle_sizes);
  EXPECT_EQ(reader.summary().num_singletons, singletons);
  EXPECT_EQ(total, built.solver_labels.size());

  // Bow-tie sections partition the graph.
  ASSERT_EQ(reader.summary().bowtie_computed, 1u);
  EXPECT_EQ(reader.summary().core_size, oracle.LargestComponent());
  EXPECT_EQ(reader.summary().core_size + reader.summary().in_size +
                reader.summary().out_size + reader.summary().other_size,
            reader.summary().graph_nodes);
}

TEST(ServeArtifactTest, EmptyAndTinyGraphs) {
  auto context = MakeTestContext(2 << 20);
  // Empty graph: nothing to serve; a typed error, not a crash or a
  // zero-section artifact that fails at Open.
  {
    const auto g = graph::MakeDiskGraph(context.get(), {});
    auto built = serve::BuildArtifact(
        context.get(), g, context->NewTempPath("empty_art"), {});
    EXPECT_FALSE(built.ok());
    EXPECT_EQ(built.status().code(), util::StatusCode::kInvalidArgument);
  }
  // Two-node cycle: the smallest real artifact round-trips.
  {
    const auto g = graph::MakeDiskGraph(context.get(), gen::CycleEdges(2));
    const std::string path = context->NewTempPath("tiny_art");
    auto built = serve::BuildArtifact(context.get(), g, path, {});
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    auto opened = ArtifactReader::Open(context.get(), path);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    EXPECT_EQ(opened.value().num_sccs(), 1u);
    EXPECT_EQ(opened.value().scc_size(0), 2u);
  }
}

// ---- Typed rejection -------------------------------------------------

void PatchBytes(const std::string& path, std::uint64_t offset,
                const void* data, std::size_t n) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  ASSERT_TRUE(f.good());
}

TEST(ServeArtifactTest, RejectsForeignAndDamagedHeaders) {
  auto built = BuildTestArtifact(200, 800, 5);
  auto* ctx = built.context.get();
  const std::uint64_t size = fs::file_size(built.path);

  int copy_seq = 0;
  const auto copy_to = [&](const char* tag) {
    const std::string copy = ::testing::TempDir() + "/extscc_" + tag + "_" +
                             std::to_string(copy_seq++) + ".art";
    fs::copy_file(built.path, copy,
                  fs::copy_options::overwrite_existing);
    return copy;
  };

  // Not an artifact at all (wrong magic): the CRC over the preamble
  // fails first, so this is corruption, not a version complaint.
  {
    const std::string path = copy_to("wrong_magic");
    PatchBytes(path, 0, "NOTANART", 8);
    auto opened = ArtifactReader::Open(ctx, path);
    ASSERT_FALSE(opened.ok());
    EXPECT_EQ(opened.status().code(), util::StatusCode::kCorruption);
  }

  // A well-formed artifact from the FUTURE: version bumped and the
  // preamble CRC recomputed so it is internally consistent. That is not
  // corruption — it is a file this build does not speak.
  {
    const std::string path = copy_to("future_version");
    serve::ArtifactPreamble preamble{};
    {
      std::ifstream f(path, std::ios::binary);
      f.read(reinterpret_cast<char*>(&preamble), sizeof(preamble));
      ASSERT_TRUE(f.good());
    }
    preamble.format_version = serve::kArtifactFormatVersion + 1;
    preamble.crc = io::Crc32(&preamble, sizeof(preamble) - sizeof(uint32_t));
    PatchBytes(path, 0, &preamble, sizeof(preamble));
    auto opened = ArtifactReader::Open(ctx, path);
    ASSERT_FALSE(opened.ok());
    EXPECT_EQ(opened.status().code(), util::StatusCode::kInvalidArgument);
  }

  // Truncations: to a non-block multiple, by whole blocks (footer
  // gone), and to a stub shorter than the minimum geometry.
  for (const std::uint64_t new_size :
       {size - 1, size - 4096, std::uint64_t{4096}, std::uint64_t{0}}) {
    const std::string path = copy_to("truncated");
    fs::resize_file(path, new_size);
    auto opened = ArtifactReader::Open(ctx, path);
    ASSERT_FALSE(opened.ok()) << "size " << new_size;
    EXPECT_EQ(opened.status().code(), util::StatusCode::kCorruption)
        << "size " << new_size << ": " << opened.status().ToString();
  }

  // Missing file keeps its errno-typed code (not corruption).
  {
    auto opened = ArtifactReader::Open(ctx, ctx->NewTempPath("never"));
    ASSERT_FALSE(opened.ok());
    EXPECT_NE(opened.status().code(), util::StatusCode::kCorruption);
  }
}

// ---- Bit-flip sweep --------------------------------------------------

// Flip one bit at a sampled file offset, then try to use the artifact.
// Acceptable outcomes, and nothing else:
//   - Open fails typed (kCorruption; kInvalidArgument only if the flip
//     forged a consistent-but-unsupported header, which a CRC'd
//     preamble makes effectively impossible for single-bit flips);
//   - the full-coverage query batch fails with kCorruption;
//   - every answer matches the clean run (flips in padding / unread
//     slack are harmless by design).
TEST(ServeArtifactTest, BitFlipNeverYieldsWrongAnswer) {
  auto built = BuildTestArtifact(500, 2000, 23);
  auto* ctx = built.context.get();
  const std::vector<Query> queries = FullCoverageQueries(built);

  std::vector<QueryAnswer> clean_answers;
  {
    auto opened = ArtifactReader::Open(ctx, built.path);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    const ArtifactReader reader = std::move(opened).value();
    const serve::QueryEngine engine(&reader);
    clean_answers.resize(queries.size());
    ASSERT_TRUE(engine
                    .RunBatch(ctx, queries.data(), queries.size(),
                              clean_answers.data())
                    .ok());
  }

  const std::uint64_t size = fs::file_size(built.path);
  const std::string mutant = ::testing::TempDir() + "/extscc_mutant.art";
  util::Rng rng(99);
  std::uint64_t detected = 0, harmless = 0;
  // Stride chosen to hit every block and both halves of most 8-byte
  // words; a seeded random bit within the byte.
  for (std::uint64_t offset = 0; offset < size; offset += 509) {
    fs::copy_file(built.path, mutant, fs::copy_options::overwrite_existing);
    std::uint8_t byte = 0;
    {
      std::ifstream f(mutant, std::ios::binary);
      f.seekg(static_cast<std::streamoff>(offset));
      f.read(reinterpret_cast<char*>(&byte), 1);
      ASSERT_TRUE(f.good());
    }
    byte = static_cast<std::uint8_t>(byte ^ (1u << rng.Uniform(8)));
    PatchBytes(mutant, offset, &byte, 1);

    auto opened = ArtifactReader::Open(ctx, mutant);
    if (!opened.ok()) {
      EXPECT_EQ(opened.status().code(), util::StatusCode::kCorruption)
          << "offset " << offset << ": " << opened.status().ToString();
      ++detected;
      continue;
    }
    const ArtifactReader reader = std::move(opened).value();
    const serve::QueryEngine engine(&reader);
    std::vector<QueryAnswer> answers(queries.size());
    const util::Status status =
        engine.RunBatch(ctx, queries.data(), queries.size(), answers.data());
    if (!status.ok()) {
      EXPECT_EQ(status.code(), util::StatusCode::kCorruption)
          << "offset " << offset << ": " << status.ToString();
      ++detected;
      continue;
    }
    for (std::size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(answers[i].known, clean_answers[i].known)
          << "offset " << offset << " query " << i;
      ASSERT_EQ(answers[i].result, clean_answers[i].result)
          << "offset " << offset << " query " << i;
      ASSERT_EQ(answers[i].scc_size, clean_answers[i].scc_size)
          << "offset " << offset << " query " << i;
    }
    ++harmless;
  }
  // The sweep must actually exercise detection — an artifact whose
  // every flip were "harmless" would mean the checksums are dead code.
  EXPECT_GT(detected, 0u);
  // And zero-padding means SOME flips are legitimately harmless; if not,
  // the stride is misconfigured rather than the format airtight.
  EXPECT_GT(detected + harmless, 0u);
}

// ---- Device-level fault injection ------------------------------------

// The artifact is built on a CLEAN context (building through a
// corrupting device would bake flips into the file before any CRC could
// cover them), then copied into the session root of a context whose
// device silently corrupts read payloads. Every read of the artifact
// now goes through the corrupting wrapper; across seeds the run must
// either detect (kCorruption) or answer exactly like the clean run.
TEST(ServeArtifactTest, FaultInjectingDeviceSweepDetectsOrAnswersRight) {
  auto built = BuildTestArtifact(400, 1600, 31);
  const std::vector<Query> queries = FullCoverageQueries(built);
  std::vector<QueryAnswer> clean_answers;
  {
    auto opened = ArtifactReader::Open(built.context.get(), built.path);
    ASSERT_TRUE(opened.ok());
    const ArtifactReader reader = std::move(opened).value();
    const serve::QueryEngine engine(&reader);
    clean_answers.resize(queries.size());
    ASSERT_TRUE(engine
                    .RunBatch(built.context.get(), queries.data(),
                              queries.size(), clean_answers.data())
                    .ok());
  }

  std::uint64_t detected = 0, clean_runs = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    io::IoContextOptions options;
    options.block_size = 4096;
    options.memory_bytes = 4 << 20;
    options.scratch_dirs = {fs::temp_directory_path().string()};
    options.device_model.model = io::DeviceModel::kFaulty;
    options.device_model.fault.seed = seed;
    options.device_model.fault.corrupt_rate = 0.05;
    options.device_model.fault.inner = io::DeviceModel::kPosix;
    io::IoContext faulty(options);
    // A temp path of THIS context lives under the faulty device's
    // session root, so opening it resolves to the corrupting wrapper.
    const std::string faulty_path = faulty.NewTempPath("artifact");
    fs::copy_file(built.path, faulty_path);
    ASSERT_NE(faulty.ResolveDevice(faulty_path),
              faulty.ResolveDevice(built.path))
        << "artifact copy must land on the faulty scratch device";

    auto opened = ArtifactReader::Open(&faulty, faulty_path);
    if (!opened.ok()) {
      EXPECT_EQ(opened.status().code(), util::StatusCode::kCorruption)
          << "seed " << seed << ": " << opened.status().ToString();
      ++detected;
      continue;
    }
    const ArtifactReader reader = std::move(opened).value();
    const serve::QueryEngine engine(&reader);
    std::vector<QueryAnswer> answers(queries.size());
    const util::Status status = engine.RunBatch(&faulty, queries.data(),
                                                queries.size(),
                                                answers.data());
    if (!status.ok()) {
      EXPECT_EQ(status.code(), util::StatusCode::kCorruption)
          << "seed " << seed << ": " << status.ToString();
      ++detected;
      continue;
    }
    for (std::size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(answers[i].result, clean_answers[i].result)
          << "seed " << seed << " query " << i;
      ASSERT_EQ(answers[i].scc_size, clean_answers[i].scc_size)
          << "seed " << seed << " query " << i;
    }
    ++clean_runs;
  }
  // At a 5% per-read corruption rate over dozens of block reads, a
  // sweep where nothing ever faulted means the injection never reached
  // the artifact's device — the test would be vacuous.
  EXPECT_GT(detected, 0u) << "clean runs: " << clean_runs;
}

}  // namespace
}  // namespace extscc
