#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "util/csv.h"
#include "util/random.h"
#include "util/status.h"
#include "util/timer.h"

namespace extscc {
namespace {

// ---------------- Status ------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  util::Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const util::Status status = util::Status::IoError("disk on fire");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kIoError);
  EXPECT_EQ(status.message(), "disk on fire");
  EXPECT_EQ(status.ToString(), "IoError: disk on fire");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int code = 0; code <= 7; ++code) {
    EXPECT_STRNE(util::StatusCodeName(static_cast<util::StatusCode>(code)),
                 "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  util::Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
}

TEST(ResultTest, HoldsStatus) {
  util::Result<int> result(util::Status::NotFound("nope"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  util::Result<std::string> result(std::string(1000, 'x'));
  std::string taken = std::move(result).value();
  EXPECT_EQ(taken.size(), 1000u);
}

// ---------------- Rng ---------------------------------------------------

TEST(RngTest, Deterministic) {
  util::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  util::Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformRespectsBound) {
  util::Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversRange) {
  util::Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformRangeInclusive) {
  util::Rng rng(6);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.UniformRange(10, 12);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  util::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  util::Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  util::Rng rng(9);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngTest, ZipfInRangeAndSkewed) {
  util::Rng rng(10);
  std::uint64_t low_half = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    const auto v = rng.Zipf(1000, 0.8);
    ASSERT_LT(v, 1000u);
    if (v < 500) ++low_half;
  }
  // Heavy skew towards small ranks.
  EXPECT_GT(low_half, trials * 0.7);
}

TEST(RngTest, ShuffleIsAPermutation) {
  util::Rng rng(11);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto shuffled = items;
  rng.Shuffle(&shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, items);
}

TEST(RngTest, ShuffleDeterministicPerSeed) {
  std::vector<int> a{1, 2, 3, 4, 5, 6, 7, 8};
  auto b = a;
  util::Rng rng_a(5), rng_b(5);
  rng_a.Shuffle(&a);
  rng_b.Shuffle(&b);
  EXPECT_EQ(a, b);
}

TEST(RngTest, ShuffleActuallyShuffles) {
  // 32 elements: identity survives with probability 1/32! — if this
  // fires, the shuffle is broken, not unlucky.
  std::vector<int> items(32);
  for (int i = 0; i < 32; ++i) items[i] = i;
  const auto original = items;
  util::Rng rng(3);
  rng.Shuffle(&items);
  EXPECT_NE(items, original);
}

TEST(RngTest, ShuffleHandlesDegenerateSizes) {
  util::Rng rng(4);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

// ---------------- Timer -------------------------------------------------

TEST(TimerTest, MonotoneAndRestartable) {
  util::Timer timer;
  const auto a = timer.ElapsedMicros();
  const auto b = timer.ElapsedMicros();
  EXPECT_GE(b, a);
  timer.Restart();
  EXPECT_GE(timer.ElapsedMicros(), 0);
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
}

// ---------------- Table / formatting -------------------------------------

TEST(TableTest, CsvRendering) {
  util::Table table({"a", "b"});
  table.AddRow({"1", "2"});
  table.AddRow({"x", "y"});
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\nx,y\n");
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TableTest, AlignedRenderingContainsCells) {
  util::Table table({"col", "another"});
  table.AddRow({"value", "4"});
  const std::string out = table.ToAligned();
  EXPECT_NE(out.find("col"), std::string::npos);
  EXPECT_NE(out.find("value"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TableTest, WriteCsvFile) {
  util::Table table({"h"});
  table.AddRow({"v"});
  const std::string path = ::testing::TempDir() + "/extscc_table_test.csv";
  ASSERT_TRUE(table.WriteCsvFile(path));
  std::remove(path.c_str());
}

TEST(FormatTest, FormatDouble) {
  EXPECT_EQ(util::FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(util::FormatDouble(2.0, 0), "2");
}

TEST(FormatTest, FormatCount) {
  EXPECT_EQ(util::FormatCount(0), "0");
  EXPECT_EQ(util::FormatCount(999), "999");
  EXPECT_EQ(util::FormatCount(1000), "1,000");
  EXPECT_EQ(util::FormatCount(1234567), "1,234,567");
}

}  // namespace
}  // namespace extscc
