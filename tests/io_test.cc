#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <numeric>
#include <vector>

#include "io/block_file.h"
#include "io/io_context.h"
#include "io/record_stream.h"
#include "test_util.h"

namespace extscc {
namespace {

using testing::MakeTestContext;

struct Record {
  std::uint64_t key;
  std::uint32_t payload;
};

// ---------------- IoStats ------------------------------------------------

TEST(IoStatsTest, ArithmeticAndTotals) {
  io::IoStats a;
  a.sequential_reads = 3;
  a.random_reads = 2;
  a.sequential_writes = 5;
  a.random_writes = 1;
  io::IoStats b = a;
  b += a;
  EXPECT_EQ(b.total_reads(), 10u);
  EXPECT_EQ(b.total_writes(), 12u);
  EXPECT_EQ(b.total_ios(), 22u);
  EXPECT_EQ(b.random_ios(), 6u);
  const io::IoStats diff = b - a;
  EXPECT_EQ(diff.total_ios(), a.total_ios());
  EXPECT_NE(a.ToString().find("ios="), std::string::npos);
}

// ---------------- MemoryBudget -------------------------------------------

TEST(MemoryBudgetTest, ReserveRelease) {
  io::MemoryBudget budget(1000);
  EXPECT_EQ(budget.available_bytes(), 1000u);
  budget.Reserve(400);
  EXPECT_EQ(budget.used_bytes(), 400u);
  EXPECT_EQ(budget.available_bytes(), 600u);
  budget.Release(400);
  EXPECT_EQ(budget.used_bytes(), 0u);
}

TEST(MemoryBudgetTest, ScopedReservation) {
  io::MemoryBudget budget(100);
  {
    io::ScopedReservation r(&budget, 60);
    EXPECT_EQ(budget.used_bytes(), 60u);
  }
  EXPECT_EQ(budget.used_bytes(), 0u);
}

TEST(MemoryBudgetTest, OversubscriptionAborts) {
  io::MemoryBudget budget(10);
  EXPECT_DEATH(budget.Reserve(11), "oversubscribed");
}

TEST(MemoryBudgetTest, SizingHelpers) {
  io::MemoryBudget budget(1 << 20);
  EXPECT_EQ(budget.MaxRecordsInMemory(8), (1u << 20) / 8);
  // fan-in = buffers - 1 output buffer
  EXPECT_EQ(budget.MergeFanIn(4096), (1u << 20) / 4096 - 1);
  io::MemoryBudget tiny(128);
  EXPECT_GE(tiny.MaxRecordsInMemory(1024), 2u);
  EXPECT_GE(tiny.MergeFanIn(4096), 2u);
}

// ---------------- TempFileManager ----------------------------------------

TEST(TempFileManagerTest, CreatesUniquePathsAndCleansUp) {
  std::string dir;
  {
    io::TempFileManager manager;
    dir = manager.dir();
    EXPECT_TRUE(std::filesystem::exists(dir));
    const std::string a = manager.NewPath("x");
    const std::string b = manager.NewPath("x");
    EXPECT_NE(a, b);
    EXPECT_EQ(a.rfind(dir, 0), 0u) << "paths live under the session dir";
  }
  EXPECT_FALSE(std::filesystem::exists(dir)) << "dir removed on destruction";
}

TEST(TempFileManagerTest, StripesRoundRobinAcrossScratchDirs) {
  namespace fs = std::filesystem;
  const std::string parent_a = fs::temp_directory_path() / "extscc_stripe_a";
  const std::string parent_b = fs::temp_directory_path() / "extscc_stripe_b";
  fs::create_directories(parent_a);
  fs::create_directories(parent_b);
  std::vector<std::string> session_dirs;
  {
    io::TempFileManager manager("", {parent_a, parent_b});
    ASSERT_EQ(manager.dirs().size(), 2u);
    session_dirs = manager.dirs();
    EXPECT_EQ(session_dirs[0].rfind(parent_a, 0), 0u);
    EXPECT_EQ(session_dirs[1].rfind(parent_b, 0), 0u);
    // Consecutive paths alternate devices; names stay unique.
    const std::string p0 = manager.NewPath("run");
    const std::string p1 = manager.NewPath("run");
    const std::string p2 = manager.NewPath("run");
    EXPECT_EQ(p0.rfind(session_dirs[0], 0), 0u);
    EXPECT_EQ(p1.rfind(session_dirs[1], 0), 0u);
    EXPECT_EQ(p2.rfind(session_dirs[0], 0), 0u);
    EXPECT_NE(p0, p2);
  }
  for (const auto& dir : session_dirs) {
    EXPECT_FALSE(fs::exists(dir)) << "session dirs removed on destruction";
  }
  fs::remove_all(parent_a);
  fs::remove_all(parent_b);
}

// ---------------- BlockFile ----------------------------------------------

TEST(BlockFileTest, RoundTripAndSize) {
  auto ctx = MakeTestContext();
  const std::string path = ctx->NewTempPath("bf");
  std::vector<char> block(ctx->block_size(), 'a');
  {
    io::BlockFile file(ctx.get(), path, io::OpenMode::kTruncateWrite);
    file.WriteBlock(0, block.data(), block.size());
    file.WriteBlock(1, block.data(), 100);  // partial tail
    EXPECT_EQ(file.size_bytes(), ctx->block_size() + 100);
    EXPECT_EQ(file.num_blocks(), 2u);
  }
  io::BlockFile file(ctx.get(), path, io::OpenMode::kRead);
  std::vector<char> buf(ctx->block_size());
  EXPECT_EQ(file.ReadBlock(0, buf.data()), ctx->block_size());
  EXPECT_EQ(file.ReadBlock(1, buf.data()), 100u);
  EXPECT_EQ(file.ReadBlock(2, buf.data()), 0u) << "EOF";
}

TEST(BlockFileTest, SequentialVsRandomClassification) {
  auto ctx = MakeTestContext();
  const std::string path = ctx->NewTempPath("bf");
  std::vector<char> block(ctx->block_size(), 'z');
  io::BlockFile file(ctx.get(), path, io::OpenMode::kReadWrite);
  for (int i = 0; i < 8; ++i) {
    file.WriteBlock(i, block.data(), block.size());
  }
  const auto before = ctx->stats();
  std::vector<char> buf(ctx->block_size());
  file.ReadBlock(0, buf.data());  // first read: random
  file.ReadBlock(1, buf.data());  // sequential
  file.ReadBlock(2, buf.data());  // sequential
  file.ReadBlock(7, buf.data());  // random
  file.ReadBlock(3, buf.data());  // random
  const auto delta = ctx->stats() - before;
  EXPECT_EQ(delta.sequential_reads, 2u);
  EXPECT_EQ(delta.random_reads, 3u);
}

TEST(BlockFileTest, WriteClassification) {
  auto ctx = MakeTestContext();
  const std::string path = ctx->NewTempPath("bf");
  std::vector<char> block(ctx->block_size(), 'q');
  io::BlockFile file(ctx.get(), path, io::OpenMode::kTruncateWrite);
  const auto before = ctx->stats();
  file.WriteBlock(0, block.data(), block.size());  // first: append treated
  file.WriteBlock(1, block.data(), block.size());  // sequential
  file.WriteBlock(5, block.data(), block.size());  // random
  const auto delta = ctx->stats() - before;
  EXPECT_EQ(delta.random_writes + delta.sequential_writes, 3u);
  EXPECT_GE(delta.random_writes, 1u);
}

TEST(IoContextTest, IoBudgetTripsFlag) {
  auto ctx = MakeTestContext();
  ctx->set_io_budget(3);
  const std::string path = ctx->NewTempPath("bf");
  std::vector<char> block(ctx->block_size(), 'b');
  io::BlockFile file(ctx.get(), path, io::OpenMode::kTruncateWrite);
  file.WriteBlock(0, block.data(), block.size());
  EXPECT_FALSE(ctx->io_budget_exceeded());
  file.WriteBlock(1, block.data(), block.size());
  file.WriteBlock(2, block.data(), block.size());
  file.WriteBlock(3, block.data(), block.size());
  EXPECT_TRUE(ctx->io_budget_exceeded());
  ctx->reset_io_budget_flag();
  EXPECT_FALSE(ctx->io_budget_exceeded());
}

TEST(IoContextTest, RequiresMAtLeastTwoBlocks) {
  io::IoContextOptions options;
  options.block_size = 4096;
  options.memory_bytes = 4096;  // < 2B
  EXPECT_DEATH(io::IoContext ctx(options), "M >= 2B");
}

// ---------------- Record streams -----------------------------------------

TEST(RecordStreamTest, WriteReadRoundTrip) {
  auto ctx = MakeTestContext();
  const std::string path = ctx->NewTempPath("records");
  constexpr int kCount = 10'000;  // spans many 4K blocks
  {
    io::RecordWriter<Record> writer(ctx.get(), path);
    for (int i = 0; i < kCount; ++i) {
      writer.Append(Record{static_cast<std::uint64_t>(i),
                           static_cast<std::uint32_t>(i * 3)});
    }
    EXPECT_EQ(writer.count(), static_cast<std::uint64_t>(kCount));
    writer.Finish();
  }
  io::RecordReader<Record> reader(ctx.get(), path);
  EXPECT_EQ(reader.num_records(), static_cast<std::uint64_t>(kCount));
  Record r;
  int i = 0;
  while (reader.Next(&r)) {
    ASSERT_EQ(r.key, static_cast<std::uint64_t>(i));
    ASSERT_EQ(r.payload, static_cast<std::uint32_t>(i * 3));
    ++i;
  }
  EXPECT_EQ(i, kCount);
}

TEST(RecordStreamTest, EmptyFile) {
  auto ctx = MakeTestContext();
  const std::string path = ctx->NewTempPath("empty");
  {
    io::RecordWriter<Record> writer(ctx.get(), path);
    writer.Finish();
  }
  io::RecordReader<Record> reader(ctx.get(), path);
  Record r;
  EXPECT_FALSE(reader.Next(&r));
  EXPECT_EQ(io::NumRecordsInFile<Record>(ctx.get(), path), 0u);
}

TEST(RecordStreamTest, WriterFinishIsIdempotentViaDestructor) {
  auto ctx = MakeTestContext();
  const std::string path = ctx->NewTempPath("records");
  {
    io::RecordWriter<std::uint32_t> writer(ctx.get(), path);
    writer.Append(7);
    // No explicit Finish: destructor must flush.
  }
  const auto all = io::ReadAllRecords<std::uint32_t>(ctx.get(), path);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0], 7u);
}

TEST(RecordStreamTest, PeekableReader) {
  auto ctx = MakeTestContext();
  const std::string path = ctx->NewTempPath("peek");
  io::WriteAllRecords<std::uint32_t>(ctx.get(), path, {1, 2, 3});
  io::PeekableReader<std::uint32_t> reader(ctx.get(), path);
  ASSERT_TRUE(reader.has_value());
  EXPECT_EQ(reader.Peek(), 1u);
  EXPECT_EQ(reader.Pop(), 1u);
  EXPECT_EQ(reader.Peek(), 2u);
  EXPECT_EQ(reader.Pop(), 2u);
  EXPECT_EQ(reader.Pop(), 3u);
  EXPECT_FALSE(reader.has_value());
}

TEST(RecordStreamTest, RandomRecordReader) {
  auto ctx = MakeTestContext();
  const std::string path = ctx->NewTempPath("random");
  std::vector<std::uint64_t> values(5000);
  std::iota(values.begin(), values.end(), 0);
  io::WriteAllRecords(ctx.get(), path, values);
  io::RandomRecordReader<std::uint64_t> reader(ctx.get(), path);
  EXPECT_EQ(reader.num_records(), 5000u);
  EXPECT_EQ(reader.Get(0), 0u);
  EXPECT_EQ(reader.Get(4999), 4999u);
  EXPECT_EQ(reader.Get(1234), 1234u);
  // Same-block hits are cached (no extra I/O).
  const auto before = ctx->stats().total_ios();
  reader.Get(1235);
  EXPECT_EQ(ctx->stats().total_ios(), before);
}

TEST(RecordStreamTest, ReadAllWriteAllRoundTrip) {
  auto ctx = MakeTestContext();
  const std::string path = ctx->NewTempPath("all");
  const std::vector<std::uint32_t> values{9, 8, 7, 6};
  io::WriteAllRecords(ctx.get(), path, values);
  EXPECT_EQ(io::ReadAllRecords<std::uint32_t>(ctx.get(), path), values);
}

// ---------------- Batched record I/O --------------------------------------

TEST(RecordStreamTest, BatchRoundTripAcrossBlockBoundaries) {
  auto ctx = MakeTestContext(/*memory_bytes=*/1 << 20, /*block_size=*/1024);
  const std::string path = ctx->NewTempPath("batch");
  std::vector<Record> values(10'000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = Record{i, static_cast<std::uint32_t>(i * 7)};
  }
  {
    io::RecordWriter<Record> writer(ctx.get(), path);
    // Uneven batch sizes so appends repeatedly straddle block boundaries.
    std::size_t at = 0;
    const std::size_t sizes[] = {1, 33, 700, 9, 2048};
    std::size_t s = 0;
    while (at < values.size()) {
      const std::size_t n = std::min(sizes[s++ % 5], values.size() - at);
      writer.AppendBatch(values.data() + at, n);
      at += n;
    }
    EXPECT_EQ(writer.count(), values.size());
    writer.Finish();
  }
  io::RecordReader<Record> reader(ctx.get(), path);
  std::vector<Record> got(values.size());
  std::size_t at = 0;
  std::size_t n;
  while ((n = reader.NextBatch(got.data() + at, 777)) > 0) at += n;
  ASSERT_EQ(at, values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(got[i].key, values[i].key) << i;
    ASSERT_EQ(got[i].payload, values[i].payload) << i;
  }
}

TEST(RecordStreamTest, NextBatchReturnsShortCountAtEof) {
  auto ctx = MakeTestContext();
  const std::string path = ctx->NewTempPath("short");
  io::WriteAllRecords<std::uint32_t>(ctx.get(), path, {1, 2, 3});
  io::RecordReader<std::uint32_t> reader(ctx.get(), path);
  std::uint32_t buf[8];
  EXPECT_EQ(reader.NextBatch(buf, 8), 3u);
  EXPECT_EQ(buf[0], 1u);
  EXPECT_EQ(buf[2], 3u);
  EXPECT_EQ(reader.NextBatch(buf, 8), 0u);
}

TEST(RecordStreamTest, CopyAllRecordsCopiesAndCounts) {
  auto ctx = MakeTestContext(/*memory_bytes=*/1 << 20, /*block_size=*/512);
  const std::string from = ctx->NewTempPath("from");
  const std::string to = ctx->NewTempPath("to");
  std::vector<std::uint64_t> values(5'000);
  std::iota(values.begin(), values.end(), 100);
  io::WriteAllRecords(ctx.get(), from, values);
  EXPECT_EQ((io::CopyAllRecords<std::uint64_t>(ctx.get(), from, to)),
            values.size());
  EXPECT_EQ(io::ReadAllRecords<std::uint64_t>(ctx.get(), to), values);
}

// ---------------- Background prefetch -------------------------------------

std::unique_ptr<io::IoContext> MakePrefetchContext(std::size_t depth) {
  io::IoContextOptions options;
  options.block_size = 4096;
  options.memory_bytes = 1 << 20;
  options.prefetch = true;
  options.prefetch_depth = depth;
  return std::make_unique<io::IoContext>(options);
}

TEST(PrefetchTest, SequentialScanSameDataAndSameAccounting) {
  std::vector<std::uint64_t> values(50'000);
  std::iota(values.begin(), values.end(), 0);

  auto baseline = [&](io::IoContext* ctx) {
    const std::string path = ctx->NewTempPath("pf");
    io::WriteAllRecords(ctx, path, values);
    const auto before = ctx->stats();
    const auto got = io::ReadAllRecords<std::uint64_t>(ctx, path);
    EXPECT_EQ(got, values);
    return ctx->stats() - before;
  };

  auto plain_ctx = MakeTestContext(1 << 20, 4096);
  const auto plain = baseline(plain_ctx.get());
  for (const std::size_t depth : {1u, 2u, 8u}) {
    auto ctx = MakePrefetchContext(depth);
    const auto prefetched = baseline(ctx.get());
    EXPECT_EQ(prefetched.total_reads(), plain.total_reads()) << depth;
    EXPECT_EQ(prefetched.sequential_reads, plain.sequential_reads) << depth;
    EXPECT_EQ(prefetched.random_reads, plain.random_reads) << depth;
    EXPECT_EQ(prefetched.bytes_read, plain.bytes_read) << depth;
  }
}

TEST(PrefetchTest, OffSequenceReadFallsBackToDirectPath) {
  auto ctx = MakePrefetchContext(/*depth=*/2);
  const std::string path = ctx->NewTempPath("pf");
  std::vector<char> block(ctx->block_size());
  {
    io::BlockFile file(ctx.get(), path, io::OpenMode::kTruncateWrite);
    for (int b = 0; b < 6; ++b) {
      std::fill(block.begin(), block.end(), static_cast<char>('a' + b));
      file.WriteBlock(b, block.data(), block.size());
    }
  }
  io::BlockFile file(ctx.get(), path, io::OpenMode::kRead);
  file.StartSequentialPrefetch();
  EXPECT_EQ(file.ReadBlock(0, block.data()), ctx->block_size());
  EXPECT_EQ(block[0], 'a');
  // Seek: the prefetcher cannot serve this; the direct path must.
  EXPECT_EQ(file.ReadBlock(5, block.data()), ctx->block_size());
  EXPECT_EQ(block[0], 'f');
  EXPECT_EQ(file.ReadBlock(3, block.data()), ctx->block_size());
  EXPECT_EQ(block[0], 'd');
}

TEST(PrefetchTest, DegradesGracefullyWhenBudgetTooSmall) {
  io::IoContextOptions options;
  options.block_size = 4096;
  options.memory_bytes = 2 * 4096;  // minimum legal M: no room for a ring
  options.prefetch = true;
  options.prefetch_depth = 4;
  io::IoContext ctx(options);
  // Consume the budget so the prefetch ring cannot be reserved.
  io::ScopedReservation hog(&ctx.memory(), 2 * 4096 - 1024);
  const std::string path = ctx.NewTempPath("pf");
  std::vector<std::uint32_t> values(4'000);
  std::iota(values.begin(), values.end(), 9);
  io::WriteAllRecords(&ctx, path, values);
  EXPECT_EQ(io::ReadAllRecords<std::uint32_t>(&ctx, path), values);
}

TEST(PrefetchTest, ReaderDestroyedBeforeEofJoinsCleanly) {
  auto ctx = MakePrefetchContext(/*depth=*/8);
  const std::string path = ctx->NewTempPath("pf");
  std::vector<std::uint64_t> values(100'000);
  std::iota(values.begin(), values.end(), 0);
  io::WriteAllRecords(ctx.get(), path, values);
  io::RecordReader<std::uint64_t> reader(ctx.get(), path);
  std::uint64_t v;
  ASSERT_TRUE(reader.Next(&v));
  EXPECT_EQ(v, 0u);
  // Destructor must stop and join the in-flight prefetch thread.
}

}  // namespace
}  // namespace extscc
