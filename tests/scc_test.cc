#include <gtest/gtest.h>

#include <vector>

#include "gen/classic_graphs.h"
#include "graph/digraph.h"
#include "scc/kosaraju.h"
#include "scc/scc_result.h"
#include "scc/tarjan.h"
#include "test_util.h"

namespace extscc {
namespace {

using graph::Edge;
using scc::KosarajuScc;
using scc::SamePartition;
using scc::SccResult;
using scc::TarjanScc;

// ---------------- SccResult ----------------------------------------------

TEST(SccResultTest, BasicAccounting) {
  SccResult r;
  r.Assign(1, 0);
  r.Assign(2, 0);
  r.Assign(3, 1);
  EXPECT_EQ(r.num_nodes(), 3u);
  EXPECT_EQ(r.num_sccs(), 2u);
  EXPECT_EQ(r.LabelOf(2), 0u);
  EXPECT_TRUE(r.Contains(3));
  EXPECT_FALSE(r.Contains(4));
  EXPECT_EQ(r.LargestComponent(), 2u);
  EXPECT_EQ(r.SortedComponentSizes(), (std::vector<std::uint64_t>{2, 1}));
}

TEST(SccResultTest, SamePartitionUpToRelabeling) {
  SccResult a, b;
  a.Assign(1, 0);
  a.Assign(2, 0);
  a.Assign(3, 1);
  b.Assign(1, 7);
  b.Assign(2, 7);
  b.Assign(3, 9);
  EXPECT_TRUE(SamePartition(a, b));
  b.Assign(3, 7);  // merge 3 into the same component
  EXPECT_FALSE(SamePartition(a, b));
  EXPECT_NE(scc::ExplainPartitionDifference(a, b), "partitions are identical");
}

TEST(SccResultTest, SamePartitionDetectsSplits) {
  SccResult a, b;
  a.Assign(1, 0);
  a.Assign(2, 0);
  b.Assign(1, 0);
  b.Assign(2, 1);
  EXPECT_FALSE(SamePartition(a, b));
  // And the symmetric case: b coarser than a.
  EXPECT_FALSE(SamePartition(b, a));
}

TEST(SccResultTest, DifferentNodeSets) {
  SccResult a, b;
  a.Assign(1, 0);
  b.Assign(2, 0);
  EXPECT_FALSE(SamePartition(a, b));
}

// ---------------- Tarjan / Kosaraju --------------------------------------

TEST(TarjanTest, SinglesAndCycle) {
  {
    graph::Digraph g(gen::PathEdges(5));
    const auto result = TarjanScc(g);
    EXPECT_EQ(result.num_sccs(), 5u);
  }
  {
    graph::Digraph g(gen::CycleEdges(5));
    const auto result = TarjanScc(g);
    EXPECT_EQ(result.num_sccs(), 1u);
    EXPECT_EQ(result.LargestComponent(), 5u);
  }
}

TEST(TarjanTest, Fig1Partition) {
  graph::Digraph g(gen::Fig1Edges());
  const auto result = TarjanScc(g);
  EXPECT_EQ(result.num_nodes(), 13u);
  EXPECT_EQ(result.num_sccs(), 5u);  // SCC1, SCC2, a, h, m
  EXPECT_EQ(result.SortedComponentSizes(),
            (std::vector<std::uint64_t>{6, 4, 1, 1, 1}));
  // b..g (1..6) together:
  for (graph::NodeId v = 2; v <= 6; ++v) {
    EXPECT_EQ(result.LabelOf(v), result.LabelOf(1));
  }
  // i..l (8..11) together, distinct from SCC1:
  for (graph::NodeId v = 9; v <= 11; ++v) {
    EXPECT_EQ(result.LabelOf(v), result.LabelOf(8));
  }
  EXPECT_NE(result.LabelOf(1), result.LabelOf(8));
  // a, h, m singletons:
  EXPECT_NE(result.LabelOf(0), result.LabelOf(1));
  EXPECT_NE(result.LabelOf(7), result.LabelOf(1));
  EXPECT_NE(result.LabelOf(7), result.LabelOf(8));
}

TEST(TarjanTest, SelfLoopIsItsOwnScc) {
  graph::Digraph g({{1, 1}, {1, 2}});
  const auto result = TarjanScc(g);
  EXPECT_EQ(result.num_sccs(), 2u);
}

TEST(TarjanTest, ParallelEdgesDoNotBreakAnything) {
  graph::Digraph g({{1, 2}, {1, 2}, {2, 1}, {2, 1}});
  const auto result = TarjanScc(g);
  EXPECT_EQ(result.num_sccs(), 1u);
}

TEST(TarjanTest, LabelAllocatorIsContiguous) {
  graph::SccId next = 100;
  graph::Digraph g(gen::PathEdges(4));
  const auto result = TarjanScc(g, &next);
  EXPECT_EQ(next, 104u);
  for (const auto& [node, label] : result.labels()) {
    EXPECT_GE(label, 100u);
    EXPECT_LT(label, 104u);
  }
}

TEST(TarjanTest, DeepGraphNoStackOverflow) {
  // 200K-node path: a recursive Tarjan would blow the call stack.
  graph::Digraph g(gen::PathEdges(200'000));
  const auto result = TarjanScc(g);
  EXPECT_EQ(result.num_sccs(), 200'000u);
}

TEST(KosarajuTest, AgreesWithTarjanOnClassics) {
  const std::vector<std::vector<Edge>> cases = {
      gen::Fig1Edges(), gen::CycleEdges(10), gen::PathEdges(10),
      gen::CompleteDigraphEdges(6), gen::CycleChainEdges(5, 4)};
  for (const auto& edges : cases) {
    graph::Digraph g(edges);
    EXPECT_TRUE(SamePartition(TarjanScc(g), KosarajuScc(g)));
  }
}

// Property sweep: Tarjan == Kosaraju on random graphs of varying density.
struct RandomGraphParam {
  std::uint32_t nodes;
  std::uint64_t edges;
  std::uint64_t seed;
  bool degenerate;
};

class SccOracleSweep : public ::testing::TestWithParam<RandomGraphParam> {};

TEST_P(SccOracleSweep, TarjanEqualsKosaraju) {
  const auto p = GetParam();
  const auto edges =
      gen::RandomDigraphEdges(p.nodes, p.edges, p.seed, p.degenerate);
  graph::Digraph g(edges);
  const auto tarjan = TarjanScc(g);
  const auto kosaraju = KosarajuScc(g);
  EXPECT_TRUE(SamePartition(tarjan, kosaraju))
      << scc::ExplainPartitionDifference(tarjan, kosaraju);
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, SccOracleSweep,
    ::testing::Values(RandomGraphParam{50, 60, 1, false},
                      RandomGraphParam{50, 200, 2, false},
                      RandomGraphParam{100, 100, 3, true},
                      RandomGraphParam{200, 800, 4, false},
                      RandomGraphParam{500, 2000, 5, true},
                      RandomGraphParam{1000, 1500, 6, false},
                      RandomGraphParam{1000, 8000, 7, true},
                      RandomGraphParam{30, 900, 8, false}));

}  // namespace
}  // namespace extscc
