#include <gtest/gtest.h>

#include <vector>

#include "core/contraction.h"
#include "core/expansion.h"
#include "core/vertex_cover.h"
#include "gen/classic_graphs.h"
#include "graph/digraph.h"
#include "graph/edge_file.h"
#include "graph/node_file.h"
#include "graph/disk_graph.h"
#include "io/record_stream.h"
#include "scc/scc_verify.h"
#include "scc/tarjan.h"
#include "test_util.h"

namespace extscc {
namespace {

using graph::Edge;
using graph::NodeId;
using graph::SccEntry;
using testing::MakeTestContext;

// Runs one contraction level, solves the contracted graph with the
// in-memory oracle, expands, and verifies SCC_i against the oracle of the
// original graph. This isolates Algorithm 5 from the driver and from
// Semi-SCC.
void ContractSolveExpandVerify(const std::vector<Edge>& edges, bool op_mode,
                               const std::vector<NodeId>& extra_nodes = {}) {
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), edges, extra_nodes);

  const std::string ein = ctx->NewTempPath("ein");
  const std::string eout = ctx->NewTempPath("eout");
  graph::SortEdgesByDst(ctx.get(), g.edge_path, ein, op_mode);
  graph::SortEdgesBySrc(ctx.get(), g.edge_path, eout, op_mode);

  core::CoverOptions cover_options;
  core::ContractionOptions contraction_options;
  if (op_mode) {
    cover_options.type1_reduction = true;
    cover_options.type2_reduction = true;
    cover_options.order = core::OrderVariant::kDegreeFanoutId;
  }
  const auto cover =
      core::ComputeVertexCover(ctx.get(), ein, eout, cover_options);
  const auto contraction = core::ContractEdges(
      ctx.get(), ein, eout, cover.cover_path, contraction_options);

  const std::string removed = ctx->NewTempPath("removed");
  graph::NodeFileDifference(ctx.get(), g.node_path, cover.cover_path,
                            removed);

  // Solve the contracted graph exactly (oracle), then write SCC_{i+1}.
  graph::SccId next_scc = 0;
  const std::string scc_next = ctx->NewTempPath("scc_next");
  {
    const auto cover_nodes =
        io::ReadAllRecords<NodeId>(ctx.get(), cover.cover_path);
    const auto contracted_edges =
        io::ReadAllRecords<Edge>(ctx.get(), contraction.edge_path);
    graph::Digraph contracted(cover_nodes, contracted_edges);
    const auto labels = scc::TarjanScc(contracted, &next_scc);
    io::RecordWriter<SccEntry> writer(ctx.get(), scc_next);
    for (const NodeId v : cover_nodes) {
      writer.Append(SccEntry{v, labels.LabelOf(v)});
    }
    writer.Finish();
  }

  const auto expanded = core::ExpandLevel(ctx.get(), ein, eout,
                                          cover.cover_path, removed, scc_next,
                                          &next_scc);
  testing::ExpectSccFileMatchesOracle(ctx.get(), g, expanded.scc_path,
                                      op_mode ? "expansion(op)"
                                              : "expansion(base)");
  // Every node of G_i is labelled exactly once.
  EXPECT_EQ(io::NumRecordsInFile<SccEntry>(ctx.get(), expanded.scc_path),
            g.num_nodes);
}

TEST(ExpansionTest, Fig1BaseMode) {
  ContractSolveExpandVerify(gen::Fig1Edges(), /*op_mode=*/false);
}

TEST(ExpansionTest, Fig1OpMode) {
  ContractSolveExpandVerify(gen::Fig1Edges(), /*op_mode=*/true);
}

TEST(ExpansionTest, CycleBothModes) {
  ContractSolveExpandVerify(gen::CycleEdges(17), false);
  ContractSolveExpandVerify(gen::CycleEdges(17), true);
}

TEST(ExpansionTest, PathProducesSingletons) {
  ContractSolveExpandVerify(gen::PathEdges(9), false);
  ContractSolveExpandVerify(gen::PathEdges(9), true);
}

TEST(ExpansionTest, IsolatedRemovedNodesGetSingletons) {
  // Isolated nodes never enter the cover; expansion must label them.
  ContractSolveExpandVerify({{1, 2}, {2, 1}}, false, {50, 60, 70});
  ContractSolveExpandVerify({{1, 2}, {2, 1}}, true, {50, 60, 70});
}

TEST(ExpansionTest, SelfLoopsAndParallelEdges) {
  const std::vector<Edge> edges{{1, 1}, {1, 2}, {2, 1}, {1, 2},
                                {3, 3}, {3, 4}, {5, 4}};
  ContractSolveExpandVerify(edges, false);
  ContractSolveExpandVerify(edges, true);
}

TEST(ExpansionTest, WedgeRemovedNodeRejoinsItsScc) {
  // 2-cycle 1<->2 via removed node: 1 -> 3 -> 1 plus 1 <-> 2 keeps 3 in
  // the same SCC as {1,2}; 3 is removed (low degree) and must be
  // re-labelled into that SCC by the in/out intersection.
  const std::vector<Edge> edges{{1, 2}, {2, 1}, {1, 3}, {3, 1}};
  ContractSolveExpandVerify(edges, false);
  ContractSolveExpandVerify(edges, true);
}

TEST(ExpansionTest, CycleChains) {
  ContractSolveExpandVerify(gen::CycleChainEdges(4, 5), false);
  ContractSolveExpandVerify(gen::CycleChainEdges(4, 5), true);
}

TEST(ExpansionTest, SingletonCountsAreConsistent) {
  auto ctx = MakeTestContext();
  const auto edges = gen::PathEdges(6);  // all singletons
  const auto g = graph::MakeDiskGraph(ctx.get(), edges);
  const std::string ein = ctx->NewTempPath("ein");
  const std::string eout = ctx->NewTempPath("eout");
  graph::SortEdgesByDst(ctx.get(), g.edge_path, ein);
  graph::SortEdgesBySrc(ctx.get(), g.edge_path, eout);
  const auto cover =
      core::ComputeVertexCover(ctx.get(), ein, eout, core::CoverOptions{});
  const auto contraction = core::ContractEdges(ctx.get(), ein, eout,
                                               cover.cover_path,
                                               core::ContractionOptions{});
  const std::string removed = ctx->NewTempPath("removed");
  const std::uint64_t removed_count = graph::NodeFileDifference(
      ctx.get(), g.node_path, cover.cover_path, removed);

  graph::SccId next_scc = 0;
  const std::string scc_next = ctx->NewTempPath("scc_next");
  {
    const auto cover_nodes =
        io::ReadAllRecords<NodeId>(ctx.get(), cover.cover_path);
    const auto contracted_edges =
        io::ReadAllRecords<Edge>(ctx.get(), contraction.edge_path);
    graph::Digraph contracted(cover_nodes, contracted_edges);
    const auto labels = scc::TarjanScc(contracted, &next_scc);
    io::RecordWriter<SccEntry> writer(ctx.get(), scc_next);
    for (const NodeId v : cover_nodes) {
      writer.Append(SccEntry{v, labels.LabelOf(v)});
    }
    writer.Finish();
  }
  const auto expanded = core::ExpandLevel(ctx.get(), ein, eout,
                                          cover.cover_path, removed, scc_next,
                                          &next_scc);
  EXPECT_EQ(expanded.removed_in_existing_scc + expanded.removed_singletons,
            removed_count);
  // A DAG admits no removed node joining an existing SCC.
  EXPECT_EQ(expanded.removed_in_existing_scc, 0u);
}

// Property sweep mirroring the contraction sweep but checking the full
// contract-solve-expand round trip.
class ExpansionSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool>> {};

TEST_P(ExpansionSweep, RoundTripMatchesOracle) {
  const auto [nodes, edge_count, seed, op_mode] = GetParam();
  ContractSolveExpandVerify(
      gen::RandomDigraphEdges(nodes, edge_count, seed,
                              /*allow_degenerate=*/true),
      op_mode);
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, ExpansionSweep,
    ::testing::Combine(::testing::Values(30, 80, 200),
                       ::testing::Values(50, 300),
                       ::testing::Values(5, 6, 7), ::testing::Bool()));

}  // namespace
}  // namespace extscc
