#include "app/bisimulation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "core/ext_scc.h"
#include "gen/classic_graphs.h"
#include "graph/digraph.h"
#include "graph/disk_graph.h"
#include "io/record_stream.h"
#include "scc/condensation.h"
#include "test_util.h"

namespace extscc {
namespace {

using app::ExternalBisimulation;
using graph::Edge;
using graph::NodeId;
using graph::SccId;
using testing::MakeTestContext;

// In-memory maximum-bisimulation oracle: refine from the trivial
// partition by successor-block signatures until stable.
std::map<NodeId, SccId> OracleBisimulation(
    const std::vector<Edge>& edges, const std::vector<NodeId>& nodes) {
  graph::Digraph g(nodes, edges);
  std::vector<SccId> block(g.num_nodes(), 0);
  bool changed = true;
  while (changed) {
    std::map<std::pair<SccId, std::set<SccId>>, SccId> sig_to_block;
    std::vector<SccId> next(g.num_nodes());
    for (std::size_t v = 0; v < g.num_nodes(); ++v) {
      std::set<SccId> succ_blocks;
      for (const auto w : g.out_neighbors(v)) succ_blocks.insert(block[w]);
      const auto key = std::make_pair(block[v], succ_blocks);
      const auto [it, inserted] = sig_to_block.emplace(
          key, static_cast<SccId>(sig_to_block.size()));
      next[v] = it->second;
    }
    changed = next != block;
    block = std::move(next);
  }
  std::map<NodeId, SccId> result;
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    result[g.id_of(v)] = block[v];
  }
  return result;
}

// True iff two labelings induce the same partition.
template <typename MapA, typename MapB>
bool SamePartition(const MapA& a, const MapB& b) {
  if (a.size() != b.size()) return false;
  std::map<SccId, SccId> fwd, bwd;
  for (const auto& [node, la] : a) {
    const auto it = b.find(node);
    if (it == b.end()) return false;
    const SccId lb = it->second;
    if (const auto f = fwd.emplace(la, lb); !f.second && f.first->second != lb)
      return false;
    if (const auto r = bwd.emplace(lb, la); !r.second && r.first->second != la)
      return false;
  }
  return true;
}

std::map<NodeId, SccId> RunBisim(io::IoContext* ctx,
                                 const graph::DiskGraph& dag,
                                 std::uint64_t* num_blocks = nullptr,
                                 std::uint64_t* num_heights = nullptr) {
  auto result = ExternalBisimulation(ctx, dag);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  std::map<NodeId, SccId> blocks;
  io::RecordReader<graph::SccEntry> reader(ctx, result.value().block_path);
  graph::SccEntry entry;
  while (reader.Next(&entry)) blocks[entry.node] = entry.scc;
  if (num_blocks != nullptr) *num_blocks = result.value().num_blocks;
  if (num_heights != nullptr) *num_heights = result.value().num_heights;
  return blocks;
}

void VerifyAgainstOracle(const std::vector<Edge>& edges,
                         const std::vector<NodeId>& extra_nodes = {}) {
  auto ctx = MakeTestContext();
  const auto dag = graph::MakeDiskGraph(ctx.get(), edges, extra_nodes);
  const auto blocks = RunBisim(ctx.get(), dag);
  const auto nodes = io::ReadAllRecords<NodeId>(ctx.get(), dag.node_path);
  const auto oracle = OracleBisimulation(edges, nodes);
  EXPECT_TRUE(SamePartition(blocks, oracle));
}

TEST(BisimulationTest, PathEveryNodeDistinct) {
  auto ctx = MakeTestContext();
  const auto dag = graph::MakeDiskGraph(ctx.get(), gen::PathEdges(12));
  std::uint64_t num_blocks = 0, num_heights = 0;
  RunBisim(ctx.get(), dag, &num_blocks, &num_heights);
  EXPECT_EQ(num_blocks, 12u) << "each path position has its own height";
  EXPECT_EQ(num_heights, 12u);
}

TEST(BisimulationTest, StarLeavesCollapse) {
  // hub -> 5 leaves: leaves are mutually bisimilar, hub is not.
  auto ctx = MakeTestContext();
  const auto dag = graph::MakeDiskGraph(
      ctx.get(), {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}});
  std::uint64_t num_blocks = 0;
  const auto blocks = RunBisim(ctx.get(), dag, &num_blocks);
  EXPECT_EQ(num_blocks, 2u);
  EXPECT_EQ(blocks.at(1), blocks.at(5));
  EXPECT_NE(blocks.at(0), blocks.at(1));
}

TEST(BisimulationTest, ParallelDiamondsShareBlocks) {
  // Two disjoint diamonds a->{b,c}->d — corresponding nodes bisimilar.
  const std::vector<Edge> edges{{0, 1}, {0, 2}, {1, 3}, {2, 3},
                                {10, 11}, {10, 12}, {11, 13}, {12, 13}};
  auto ctx = MakeTestContext();
  const auto dag = graph::MakeDiskGraph(ctx.get(), edges);
  std::uint64_t num_blocks = 0;
  const auto blocks = RunBisim(ctx.get(), dag, &num_blocks);
  EXPECT_EQ(num_blocks, 3u) << "sink / middle / source";
  EXPECT_EQ(blocks.at(0), blocks.at(10));
  EXPECT_EQ(blocks.at(1), blocks.at(12));
  EXPECT_EQ(blocks.at(3), blocks.at(13));
}

TEST(BisimulationTest, IsolatedNodesJoinTheSinkBlock) {
  auto ctx = MakeTestContext();
  const auto dag =
      graph::MakeDiskGraph(ctx.get(), {{0, 1}}, /*extra_nodes=*/{7, 9});
  const auto blocks = RunBisim(ctx.get(), dag);
  EXPECT_EQ(blocks.at(7), blocks.at(9));
  EXPECT_EQ(blocks.at(7), blocks.at(1)) << "sinks have the empty signature";
  EXPECT_NE(blocks.at(0), blocks.at(1));
}

TEST(BisimulationTest, RejectsCyclicInput) {
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), gen::CycleEdges(4));
  auto result = ExternalBisimulation(ctx.get(), g);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(BisimulationTest, EmptyGraph) {
  auto ctx = MakeTestContext();
  const auto dag = graph::MakeDiskGraph(ctx.get(), {});
  std::uint64_t num_blocks = 0;
  const auto blocks = RunBisim(ctx.get(), dag, &num_blocks);
  EXPECT_TRUE(blocks.empty());
  EXPECT_EQ(num_blocks, 0u);
}

TEST(BisimulationTest, FullPipelineFromCyclicGraph) {
  // The paper's preprocessing story ([16]): cyclic graph -> Ext-SCC ->
  // condensation -> bisimulation on the DAG.
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), gen::CycleChainEdges(5, 4));
  const std::string scc_path = ctx->NewTempPath("scc");
  ASSERT_TRUE(core::RunExtScc(ctx.get(), g, scc_path,
                              core::ExtSccOptions::Optimized())
                  .ok());
  const auto condensation =
      scc::BuildCondensation(ctx.get(), g, scc_path);
  std::uint64_t num_blocks = 0;
  RunBisim(ctx.get(), condensation.dag, &num_blocks);
  // A chain of 5 contracted cycles condenses to a 5-node path: all
  // positions distinct.
  EXPECT_EQ(num_blocks, 5u);
}

// Property sweep vs the oracle on random DAGs.
class BisimulationSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BisimulationSweep, MatchesOracle) {
  const auto [nodes, edges, seed] = GetParam();
  VerifyAgainstOracle(
      gen::RandomDagEdges(nodes, edges, seed));
}

INSTANTIATE_TEST_SUITE_P(
    RandomDags, BisimulationSweep,
    ::testing::Combine(::testing::Values(20, 80, 200),
                       ::testing::Values(40, 320),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace extscc
