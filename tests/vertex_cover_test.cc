#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_set>
#include <vector>

#include "core/node_order.h"
#include "core/vertex_cover.h"
#include "gen/classic_graphs.h"
#include "graph/edge_file.h"
#include "graph/disk_graph.h"
#include "io/record_stream.h"
#include "test_util.h"
#include "util/logging.h"

namespace extscc {
namespace {

using core::BoundedNodeCache;
using core::CoverOptions;
using core::NodeGreater;
using core::NodeKey;
using core::OrderVariant;
using graph::Edge;
using graph::NodeId;
using testing::MakeTestContext;

// ---------------- Node order ---------------------------------------------

TEST(NodeOrderTest, Definition51DegreeThenId) {
  const NodeKey low_deg{1, 1, 1};   // deg 2
  const NodeKey high_deg{2, 2, 2};  // deg 4
  EXPECT_TRUE(NodeGreater(high_deg, low_deg, OrderVariant::kDegreeId));
  EXPECT_FALSE(NodeGreater(low_deg, high_deg, OrderVariant::kDegreeId));
  const NodeKey tie_a{5, 1, 1};
  const NodeKey tie_b{9, 2, 0};  // same deg 2, larger id
  EXPECT_TRUE(NodeGreater(tie_b, tie_a, OrderVariant::kDegreeId));
}

TEST(NodeOrderTest, Definition71FanoutBreaksDegreeTies) {
  const NodeKey balanced{1, 2, 2};   // deg 4, fanout 4
  const NodeKey skewed{9, 4, 0};     // deg 4, fanout 0, larger id
  // Def 5.1: id decides -> skewed greater.
  EXPECT_TRUE(NodeGreater(skewed, balanced, OrderVariant::kDegreeId));
  // Def 7.1: fanout decides -> balanced greater (kept in the cover, so
  // its expensive removal is avoided).
  EXPECT_TRUE(NodeGreater(balanced, skewed, OrderVariant::kDegreeFanoutId));
  EXPECT_FALSE(NodeGreater(skewed, balanced, OrderVariant::kDegreeFanoutId));
}

TEST(NodeOrderTest, TotalOrderIsAntisymmetric) {
  const NodeKey a{3, 1, 2};
  const NodeKey b{4, 2, 1};
  for (const auto variant :
       {OrderVariant::kDegreeId, OrderVariant::kDegreeFanoutId}) {
    EXPECT_NE(NodeGreater(a, b, variant), NodeGreater(b, a, variant));
    EXPECT_FALSE(NodeGreater(a, a, variant));
  }
}

TEST(BoundedNodeCacheTest, InsertAndContains) {
  BoundedNodeCache cache(4, OrderVariant::kDegreeId);
  cache.Insert(NodeKey{1, 1, 1});
  cache.Insert(NodeKey{2, 1, 1});
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_FALSE(cache.Contains(3));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(BoundedNodeCacheTest, KeepsSmallestUnderPressure) {
  BoundedNodeCache cache(2, OrderVariant::kDegreeId);
  cache.Insert(NodeKey{10, 5, 5});  // deg 10 (largest)
  cache.Insert(NodeKey{20, 1, 1});  // deg 2
  cache.Insert(NodeKey{30, 2, 2});  // deg 4 -> evicts node 10
  EXPECT_FALSE(cache.Contains(10));
  EXPECT_TRUE(cache.Contains(20));
  EXPECT_TRUE(cache.Contains(30));
  // A node larger than everything cached is simply not admitted.
  cache.Insert(NodeKey{40, 9, 9});
  EXPECT_FALSE(cache.Contains(40));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(BoundedNodeCacheTest, DuplicateInsertIsNoop) {
  BoundedNodeCache cache(2, OrderVariant::kDegreeId);
  cache.Insert(NodeKey{1, 1, 1});
  cache.Insert(NodeKey{1, 1, 1});
  EXPECT_EQ(cache.size(), 1u);
}

// ---------------- Get-V --------------------------------------------------

struct CoverRun {
  std::vector<NodeId> cover;
  core::CoverResult result;
};

CoverRun RunCover(io::IoContext* ctx, const std::vector<Edge>& edges,
                  const CoverOptions& options) {
  const std::string raw = ctx->NewTempPath("raw");
  io::WriteAllRecords(ctx, raw, edges);
  const std::string ein = ctx->NewTempPath("ein");
  const std::string eout = ctx->NewTempPath("eout");
  graph::SortEdgesByDst(ctx, raw, ein);
  graph::SortEdgesBySrc(ctx, raw, eout);
  CoverRun run;
  run.result = core::ComputeVertexCover(ctx, ein, eout, options);
  run.cover = io::ReadAllRecords<NodeId>(ctx, run.result.cover_path);
  return run;
}

bool IsVertexCover(const std::vector<Edge>& edges,
                   const std::vector<NodeId>& cover) {
  const std::unordered_set<NodeId> in_cover(cover.begin(), cover.end());
  for (const Edge& e : edges) {
    if (in_cover.count(e.src) == 0 && in_cover.count(e.dst) == 0) {
      return false;
    }
  }
  return true;
}

TEST(VertexCoverTest, CoversEveryEdgeBaseMode) {
  auto ctx = MakeTestContext();
  const auto edges = gen::Fig1Edges();
  const auto run = RunCover(ctx.get(), edges, CoverOptions{});
  EXPECT_TRUE(IsVertexCover(edges, run.cover));
  // Contractible: strictly fewer cover nodes than graph nodes (13).
  EXPECT_LT(run.cover.size(), 13u);
  EXPECT_GT(run.cover.size(), 0u);
}

TEST(VertexCoverTest, SingleEdgePicksLargerEndpoint) {
  auto ctx = MakeTestContext();
  // deg equal (1 each) -> id decides: 7 > 3.
  const auto run = RunCover(ctx.get(), {{3, 7}}, CoverOptions{});
  EXPECT_EQ(run.cover, (std::vector<NodeId>{7}));
}

TEST(VertexCoverTest, StarKeepsCenter) {
  auto ctx = MakeTestContext();
  // Center 0 with 5 out-spokes: center has deg 5, leaves deg 1.
  std::vector<Edge> star;
  for (NodeId leaf = 1; leaf <= 5; ++leaf) star.push_back({0, leaf});
  const auto run = RunCover(ctx.get(), star, CoverOptions{});
  EXPECT_EQ(run.cover, (std::vector<NodeId>{0}));
}

TEST(VertexCoverTest, SelfLoopNodeAlwaysInCover) {
  auto ctx = MakeTestContext();
  const auto run = RunCover(ctx.get(), {{4, 4}, {1, 2}}, CoverOptions{});
  EXPECT_NE(std::find(run.cover.begin(), run.cover.end(), 4u),
            run.cover.end());
}

TEST(VertexCoverTest, EmptyEdgeSetYieldsEmptyCover) {
  auto ctx = MakeTestContext();
  const auto run = RunCover(ctx.get(), {}, CoverOptions{});
  EXPECT_TRUE(run.cover.empty());
}

TEST(VertexCoverTest, Type1DropsSourcesAndSinks) {
  auto ctx = MakeTestContext();
  // Pure DAG path: every node is (eventually) source/sink but degrees are
  // computed once — only the interior nodes have in>0 and out>0.
  CoverOptions op;
  op.type1_reduction = true;
  const auto run = RunCover(ctx.get(), gen::PathEdges(6), op);
  // Nodes 0 and 5 are source/sink; all edges incident to interior
  // nodes remain and must still be covered by interior nodes only.
  for (const NodeId v : run.cover) {
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 4u);
  }
}

TEST(VertexCoverTest, Type1KeepsCycleNodesEligible) {
  auto ctx = MakeTestContext();
  CoverOptions op;
  op.type1_reduction = true;
  const auto edges = gen::CycleEdges(8);
  const auto run = RunCover(ctx.get(), edges, op);
  EXPECT_TRUE(IsVertexCover(edges, run.cover));
  EXPECT_LT(run.cover.size(), 8u);
}

TEST(VertexCoverTest, Type2ShrinksCover) {
  auto ctx = MakeTestContext();
  const auto edges = gen::RandomDigraphEdges(500, 2000, 17);
  const auto base = RunCover(ctx.get(), edges, CoverOptions{});
  CoverOptions op;
  op.type2_reduction = true;
  const auto reduced = RunCover(ctx.get(), edges, op);
  EXPECT_TRUE(IsVertexCover(edges, reduced.cover))
      << "Type-2 reduction must preserve covering";
  EXPECT_LE(reduced.cover.size(), base.cover.size());
  EXPECT_GT(reduced.result.type2_skips, 0u);
}

TEST(VertexCoverTest, CoverIsSortedUnique) {
  auto ctx = MakeTestContext();
  const auto run =
      RunCover(ctx.get(), gen::RandomDigraphEdges(300, 900, 5), CoverOptions{});
  for (std::size_t i = 1; i < run.cover.size(); ++i) {
    EXPECT_LT(run.cover[i - 1], run.cover[i]);
  }
  EXPECT_EQ(run.result.cover_count, run.cover.size());
}

// Property sweep: base and Op covers across random graphs.
class CoverSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(CoverSweep, CoverPropertyAndShrinkage) {
  const auto [nodes, edges_count, seed] = GetParam();
  auto ctx = MakeTestContext();
  const auto edges = gen::RandomDigraphEdges(nodes, edges_count, seed,
                                             /*allow_degenerate=*/true);
  // Base mode: full vertex-cover property.
  const auto base = RunCover(ctx.get(), edges, CoverOptions{});
  EXPECT_TRUE(IsVertexCover(edges, base.cover));
  const auto g = graph::MakeDiskGraph(ctx.get(), edges);
  EXPECT_LT(base.cover.size(), g.num_nodes) << "contractible (Lemma 5.2)";

  // Op mode (same order so the cover is a subset of the base cover):
  // only edges not incident to a Type-1 node need covering.
  CoverOptions op;
  op.type1_reduction = true;
  op.type2_reduction = true;
  const auto opt = RunCover(ctx.get(), edges, op);
  EXPECT_LE(opt.cover.size(), base.cover.size());
  EXPECT_LT(opt.cover.size(), g.num_nodes);

  // Refined order (Def. 7.1) still yields a valid cover.
  CoverOptions refined;
  refined.order = OrderVariant::kDegreeFanoutId;
  const auto ref = RunCover(ctx.get(), edges, refined);
  EXPECT_TRUE(IsVertexCover(edges, ref.cover));
  EXPECT_LT(ref.cover.size(), g.num_nodes);

  // Theorem 5.3: every removed node (outside the base cover) has degree
  // at most sqrt(2 |E|) — the bound behind the E_add analysis.
  {
    std::map<NodeId, std::uint32_t> deg;
    for (const Edge& e : edges) {
      ++deg[e.src];
      ++deg[e.dst];
    }
    const std::unordered_set<NodeId> in_cover(base.cover.begin(),
                                              base.cover.end());
    const double bound = std::sqrt(2.0 * static_cast<double>(edges.size()));
    for (const auto& [node, d] : deg) {
      if (in_cover.count(node) == 0) {
        EXPECT_LE(static_cast<double>(d), bound)
            << "Theorem 5.3 violated for removed node " << node;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, CoverSweep,
    ::testing::Combine(::testing::Values(50, 200, 500),
                       ::testing::Values(100, 600, 2000),
                       ::testing::Values(11, 12)));

// ---- approximation quality (paper's [7]: ratio sqrt(D)/2 + 3/2) ----------

// Brute-force minimum vertex cover by subset enumeration (n <= 16).
std::size_t BruteForceMinCover(const std::vector<Edge>& edges,
                               const std::vector<NodeId>& nodes) {
  const std::size_t n = nodes.size();
  CHECK_LE(n, 16u);
  std::size_t best = n;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    const auto size = static_cast<std::size_t>(__builtin_popcount(mask));
    if (size >= best) continue;
    bool covers = true;
    for (const Edge& e : edges) {
      const auto si = static_cast<std::size_t>(
          std::lower_bound(nodes.begin(), nodes.end(), e.src) -
          nodes.begin());
      const auto di = static_cast<std::size_t>(
          std::lower_bound(nodes.begin(), nodes.end(), e.dst) -
          nodes.begin());
      if ((mask & (1u << si)) == 0 && (mask & (1u << di)) == 0) {
        covers = false;
        break;
      }
    }
    if (covers) best = size;
  }
  return best;
}

class CoverApproximationSweep : public ::testing::TestWithParam<int> {};

TEST_P(CoverApproximationSweep, WithinPaperRatioOfOptimal) {
  const int seed = GetParam();
  const auto edges =
      gen::RandomDigraphEdges(12, 24, seed, /*allow_degenerate=*/true);
  std::vector<NodeId> nodes;
  std::uint32_t max_deg = 0;
  {
    std::map<NodeId, std::uint32_t> deg;
    for (const Edge& e : edges) {
      ++deg[e.src];
      ++deg[e.dst];
    }
    for (const auto& [node, d] : deg) {
      nodes.push_back(node);
      max_deg = std::max(max_deg, d);
    }
  }
  if (nodes.empty()) return;
  const std::size_t optimal = BruteForceMinCover(edges, nodes);

  auto ctx = MakeTestContext();
  for (const auto order :
       {core::OrderVariant::kDegreeId, core::OrderVariant::kDegreeFanoutId}) {
    CoverOptions options;
    options.order = order;
    const auto run = RunCover(ctx.get(), edges, options);
    EXPECT_TRUE(IsVertexCover(edges, run.cover));
    // The algorithm of [7] guarantees ratio sqrt(D)/2 + 3/2 where D is
    // the max degree. (Optimal 0 only for empty edge sets.)
    if (optimal > 0) {
      const double ratio = static_cast<double>(run.cover.size()) /
                           static_cast<double>(optimal);
      EXPECT_LE(ratio, std::sqrt(static_cast<double>(max_deg)) / 2.0 + 1.5)
          << "seed " << seed << " cover " << run.cover.size() << " opt "
          << optimal;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverApproximationSweep,
                         ::testing::Range(1, 17));

}  // namespace
}  // namespace extscc
