// The kill-loop crash-consistency harness: spawns the real extscc_tool
// binary and kills it at every seeded durability point (--crash-at),
// plus wall-clock SIGKILLs, then requires recovery to a valid state
// with byte-identical answers:
//
//   solve    crash at point k, `--resume` from the checkpoint -> the
//            label file is byte-identical to an uncrashed solve's
//   build    crash mid-publish -> the artifact path holds either
//            nothing or a fully valid artifact; a re-run converges
//   update   crash anywhere -> fsck repairs the leftovers and a re-run
//            of the same batch answers queries identically
//
// The final test enforces the acceptance floor: at least 50 injected
// crash runs across the suite (topped up from a SplitMix64 stream so
// any shortfall is made deterministic, not flaky).
//
// CMake only defines EXTSCC_TOOL_PATH when the extscc_tool target is
// built alongside the tests; without it the suite skips.
#include <gtest/gtest.h>

#ifndef EXTSCC_TOOL_PATH

TEST(CrashTest, ToolUnavailable) {
  GTEST_SKIP() << "extscc_tool not built; crash harness skipped";
}

#else  // EXTSCC_TOOL_PATH

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "io/crash_point.h"

namespace extscc {
namespace {

namespace fs = std::filesystem;

// Seeded crash runs observed so far (exit 86 or SIGKILL footprints).
// The acceptance criterion for the whole harness is >= 50.
int g_crash_runs = 0;

// Sweeps are bounded so a regression that stops the tool from ever
// exiting cleanly fails fast instead of spinning.
constexpr int kMaxSweep = 200;

class CrashHarness : public ::testing::Test {
 public:
  static void SetUpTestSuite() {
    dir_ = new fs::path(fs::path(::testing::TempDir()) / "extscc_crash");
    fs::remove_all(*dir_);
    fs::create_directories(*dir_);
    // 12K nodes vs a 128 KiB budget (16 bytes/node semi contract):
    // the solve MUST contract at least one level, so the checkpoint
    // sweep covers level saves, the semi save, and expansion saves.
    ASSERT_EQ(Tool("generate web 12000 " + Path("g.txt") + " 3"), 0);
    ASSERT_EQ(Tool("solve " + Path("g.txt") + " " + Path("ref_labels.txt") +
                   " " + std::to_string(kMemory)),
              0);

    // A probe batch the artifact tests replay; answers go to stdout
    // (stats go to stderr), so clean runs are byte-comparable.
    std::ofstream probes(Path("probes.txt"));
    for (int u = 0; u < 24; ++u) probes << "stat " << u * 499 << "\n";
    for (int u = 0; u < 16; ++u) {
      probes << "same " << u * 701 << " " << u * 701 + 13 << "\n";
      probes << "reach " << u * 701 << " " << (u + 1) * 701 << "\n";
    }
    probes << "\n";
    probes.close();

    // An update batch over existing node ids (text edge list).
    std::ofstream upd(Path("upd.txt"));
    for (int i = 0; i < 500; ++i) {
      upd << (i * 37) % 12000 << " " << (i * 53 + 11) % 12000 << "\n";
    }
    upd.close();
  }

  static void TearDownTestSuite() {
    delete dir_;
    dir_ = nullptr;
  }

  static std::string Path(const std::string& name) {
    return (*dir_ / name).string();
  }

  // Runs the tool; returns its exit code, or -signal when killed.
  // stdout+stderr append to harness.log for post-mortems.
  static int Tool(const std::string& args) {
    const std::string cmd = std::string(EXTSCC_TOOL_PATH) + " " + args +
                            " >>" + Path("harness.log") + " 2>&1";
    const int rc = std::system(cmd.c_str());
    if (WIFEXITED(rc)) return WEXITSTATUS(rc);
    if (WIFSIGNALED(rc)) return -WTERMSIG(rc);
    return -999;
  }

  // Like Tool but stdout goes to `stdout_path` (query answers).
  static int ToolCapture(const std::string& args,
                         const std::string& stdout_path) {
    const std::string cmd = std::string(EXTSCC_TOOL_PATH) + " " + args +
                            " >" + stdout_path + " 2>>" +
                            Path("harness.log");
    const int rc = std::system(cmd.c_str());
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  }

  static std::string Slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  static void ExpectSameBytes(const std::string& got,
                              const std::string& want, const char* what) {
    const std::string a = Slurp(got);
    const std::string b = Slurp(want);
    ASSERT_FALSE(b.empty()) << what << ": reference " << want << " is empty";
    EXPECT_EQ(a, b) << what << ": " << got << " diverged from " << want
                    << " (see " << Path("harness.log") << ")";
  }

  // Two 64 KiB blocks — the tool's floor — and small enough that 12K
  // nodes exceed the semi contract, forcing contraction levels.
  static constexpr std::uint64_t kMemory = 131072;
  static fs::path* dir_;
};

fs::path* CrashHarness::dir_ = nullptr;

// One crash+resume cycle at ordinal `k` against a fresh checkpoint
// directory. `global_flags` (device model, placement, scratch dirs)
// apply to BOTH the crashing run and the resume. Returns false when
// ordinal `k` was past the last durability point (the run finished
// cleanly).
bool CrashResumeCycleAt(int k, const std::string& tag_prefix = "",
                        const std::string& global_flags = "") {
  const std::string ck = CrashHarness::Path("ck");
  const std::string out = CrashHarness::Path("labels_crash.txt");
  fs::remove_all(ck);
  fs::remove(out);
  const std::string spec =
      tag_prefix.empty() ? std::to_string(k)
                         : tag_prefix + ":" + std::to_string(k);
  const int rc = CrashHarness::Tool(
      global_flags + "--crash-at=" + spec + " solve --checkpoint-dir=" + ck +
      " " + CrashHarness::Path("g.txt") + " " + out + " " +
      std::to_string(CrashHarness::kMemory));
  if (rc == 0) {
    // Clean run: the sweep walked past the last durability point.
    // Still a correctness check for free.
    CrashHarness::ExpectSameBytes(out, CrashHarness::Path("ref_labels.txt"),
                                  "post-sweep clean solve");
    return false;
  }
  EXPECT_EQ(rc, io::kCrashExitCode) << "crash-at=" << spec;
  ++g_crash_runs;
  const int resumed = CrashHarness::Tool(
      global_flags + "solve --checkpoint-dir=" + ck + " --resume " +
      CrashHarness::Path("g.txt") + " " + out + " " +
      std::to_string(CrashHarness::kMemory));
  EXPECT_EQ(resumed, 0) << "resume after crash-at=" << spec;
  CrashHarness::ExpectSameBytes(out, CrashHarness::Path("ref_labels.txt"),
                                ("resume after crash-at=" + spec).c_str());
  // Success empties the checkpoint directory.
  EXPECT_FALSE(fs::exists(ck + "/MANIFEST")) << "crash-at=" << spec;
  return true;
}

TEST_F(CrashHarness, SolveCrashSweepResumesByteIdentical) {
  // Kill the solve at EVERY durability point in order; each resume must
  // reproduce the uncrashed labels byte for byte.
  int k = 1;
  for (; k <= kMaxSweep; ++k) {
    if (!CrashResumeCycleAt(k)) break;
    if (HasFatalFailure()) return;
  }
  ASSERT_LE(k, kMaxSweep) << "solve never ran past its durability points";
  // The sweep must have actually exercised checkpointing: at least one
  // level save + the semi save land well above this floor.
  EXPECT_GE(k, 10) << "suspiciously few durability points in a "
                      "checkpointed multi-level solve";
}

TEST_F(CrashHarness, SolveCrashWithoutResumeStartsFresh) {
  // A crashed checkpointed solve re-run WITHOUT --resume must ignore
  // the leftovers and still converge.
  const std::string ck = Path("ck_fresh");
  const std::string out = Path("labels_fresh.txt");
  fs::remove_all(ck);
  const int rc = Tool("--crash-at=ckpt:3 solve --checkpoint-dir=" + ck +
                      " " + Path("g.txt") + " " + out + " " +
                      std::to_string(kMemory));
  ASSERT_EQ(rc, io::kCrashExitCode);
  ++g_crash_runs;
  ASSERT_EQ(Tool("solve --checkpoint-dir=" + ck + " " + Path("g.txt") + " " +
                 out + " " + std::to_string(kMemory)),
            0);
  ExpectSameBytes(out, Path("ref_labels.txt"), "fresh restart after crash");
}

TEST_F(CrashHarness, BuildIndexCrashSweepPublishIsAtomic) {
  const std::string ref_art = Path("ref.art");
  const std::string ref_ans = Path("ref_answers.txt");
  ASSERT_EQ(Tool("build-index " + Path("g.txt") + " " + ref_art), 0);
  ASSERT_EQ(ToolCapture("query " + ref_art + " " + Path("probes.txt"),
                        ref_ans),
            0);

  const std::string art = Path("crash.art");
  int k = 1;
  for (; k <= kMaxSweep; ++k) {
    fs::remove(art);
    fs::remove(art + ".tmp");
    const int rc = Tool("--crash-at=" + std::to_string(k) + " build-index " +
                        Path("g.txt") + " " + art);
    if (rc == 0) break;
    ASSERT_EQ(rc, io::kCrashExitCode) << "crash-at=" << k;
    ++g_crash_runs;
    // The publish is atomic: after a crash the artifact either does
    // not exist yet or is complete — a query against an existing file
    // must succeed with the reference answers, never see a torn file.
    if (fs::exists(art)) {
      const std::string ans = Path("crash_answers.txt");
      ASSERT_EQ(ToolCapture("query " + art + " " + Path("probes.txt"), ans),
                0)
          << "torn artifact visible after crash-at=" << k;
      ExpectSameBytes(ans, ref_ans, "artifact published before crash");
    }
    // fsck sweeps the leftovers (notably <art>.tmp); on a non-existent
    // artifact it reports not-found, which is fine mid-sweep.
    const int fsck = Tool("fsck " + art);
    ASSERT_TRUE(fsck == 0 || fsck == 10 || fsck == 4)
        << "fsck exit " << fsck << " after crash-at=" << k;
    EXPECT_FALSE(fs::exists(art + ".tmp"))
        << "fsck left the orphaned publish, crash-at=" << k;
    // Convergence: the same build, uncrashed, from whatever is left.
    ASSERT_EQ(Tool("build-index " + Path("g.txt") + " " + art), 0);
    const std::string ans = Path("crash_answers.txt");
    ASSERT_EQ(ToolCapture("query " + art + " " + Path("probes.txt"), ans), 0);
    ExpectSameBytes(ans, ref_ans, "rebuild after crash");
  }
  ASSERT_LE(k, kMaxSweep) << "build-index never ran past its crash points";
}

TEST_F(CrashHarness, UpdateCrashSweepRecoversWithFsck) {
  const std::string pristine = Path("pristine.art");
  ASSERT_EQ(Tool("build-index " + Path("g.txt") + " " + pristine), 0);

  // Reference: pristine + the batch, applied without interference.
  const std::string ref_art = Path("ref_upd.art");
  fs::copy_file(pristine, ref_art, fs::copy_options::overwrite_existing);
  ASSERT_EQ(Tool("update --index=" + ref_art + " --edges=" + Path("upd.txt")),
            0);
  const std::string ref_ans = Path("ref_upd_answers.txt");
  ASSERT_EQ(ToolCapture("query " + ref_art + " " + Path("probes.txt"),
                        ref_ans),
            0);

  const std::string art = Path("upd_crash.art");
  int k = 1;
  for (; k <= kMaxSweep; ++k) {
    fs::copy_file(pristine, art, fs::copy_options::overwrite_existing);
    fs::remove(art + ".dlog");
    fs::remove(art + ".dlog.tmp");
    fs::remove(art + ".tmp");
    const int rc = Tool("--crash-at=" + std::to_string(k) + " update" +
                        " --index=" + art + " --edges=" + Path("upd.txt"));
    if (rc == 0) break;
    ASSERT_EQ(rc, io::kCrashExitCode) << "crash-at=" << k;
    ++g_crash_runs;
    // fsck removes orphaned publishes / truncates torn delta tails.
    const int fsck = Tool("fsck " + art);
    ASSERT_TRUE(fsck == 0 || fsck == 10)
        << "fsck exit " << fsck << " after update crash-at=" << k;
    ASSERT_EQ(Tool("fsck " + art), 0)
        << "fsck did not converge after crash-at=" << k;
    // Re-applying the SAME batch is idempotent on the SCC partition:
    // answers must match the uncrashed reference.
    ASSERT_EQ(Tool("update --index=" + art + " --edges=" + Path("upd.txt")),
              0)
        << "re-update after crash-at=" << k;
    const std::string ans = Path("upd_crash_answers.txt");
    ASSERT_EQ(ToolCapture("query " + art + " " + Path("probes.txt"), ans), 0);
    ExpectSameBytes(ans, ref_ans, "update recovery");
  }
  ASSERT_LE(k, kMaxSweep) << "update never ran past its crash points";
  EXPECT_GE(k, 3) << "update exposed suspiciously few durability points";
}

TEST_F(CrashHarness, CrashMatrixFaultyDeviceStripedPlacement) {
  // The matrix point the single-axis sweeps miss: a crash landing
  // while the scratch devices are ALSO injecting transient faults and
  // every scratch file stripes across two simulated disks. Labels must
  // still come back byte-identical — crash recovery, retry/failover,
  // and striped placement compose.
  const std::string a = Path("stripe_a");
  const std::string b = Path("stripe_b");
  fs::create_directories(a);
  fs::create_directories(b);
  const std::string flags =
      "--device-model=faulty:seed=11,rate=0.002 --placement=striped "
      "--scratch-dirs=" + a + "," + b + " ";
  // A clean run under the matrix first: transient faults + striping
  // must not change the labels even without a crash.
  const std::string out = Path("labels_matrix.txt");
  ASSERT_EQ(Tool(flags + "solve " + Path("g.txt") + " " + out + " " +
                 std::to_string(kMemory)),
            0);
  ExpectSameBytes(out, Path("ref_labels.txt"), "faulty+striped clean solve");
  for (const int k : {2, 7, 13, 21}) {
    CrashResumeCycleAt(k, "", flags);
    if (HasFatalFailure()) return;
  }
}

TEST_F(CrashHarness, WallClockSigkillDuringSolveThenResume) {
  // Crash points only cover durability-relevant instants; a wall-clock
  // SIGKILL can land anywhere (mid-sort, mid-write, mid-anything).
  const std::string ck = Path("ck_kill");
  const std::string out = Path("labels_kill.txt");
  const std::string log = Path("harness.log");
  for (const int delay_ms : {25, 60, 120, 220, 400}) {
    fs::remove_all(ck);
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      const int fd = ::open(log.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (fd >= 0) {
        ::dup2(fd, 1);
        ::dup2(fd, 2);
      }
      const std::string mem = std::to_string(kMemory);
      const std::string ckflag = "--checkpoint-dir=" + ck;
      ::execl(EXTSCC_TOOL_PATH, EXTSCC_TOOL_PATH, "solve", ckflag.c_str(),
              Path("g.txt").c_str(), out.c_str(), mem.c_str(),
              static_cast<char*>(nullptr));
      _exit(127);
    }
    ::usleep(static_cast<useconds_t>(delay_ms) * 1000);
    ::kill(child, SIGKILL);
    int wstatus = 0;
    ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
    if (WIFSIGNALED(wstatus)) ++g_crash_runs;
    // Whether the kill landed or the solve won the race, a resume (or
    // first run) against the directory must converge byte-identically.
    ASSERT_EQ(Tool("solve --checkpoint-dir=" + ck + " --resume " +
                   Path("g.txt") + " " + out + " " + std::to_string(kMemory)),
              0)
        << "resume after SIGKILL at ~" << delay_ms << "ms";
    ExpectSameBytes(out, Path("ref_labels.txt"), "resume after SIGKILL");
  }
}

TEST_F(CrashHarness, AtLeastFiftySeededCrashRuns) {
  // Top up to the acceptance floor from a SplitMix64 stream, so the
  // floor never depends on exactly how many durability points the
  // earlier sweeps happened to find. Every drawn ordinal is replayable
  // as a single --crash-at=N.
  std::uint64_t state = 0x243f6a8885a308d3ull;  // pi, arbitrary fixed seed
  auto next = [&state]() {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  for (int attempt = 0; g_crash_runs < 50 && attempt < 150; ++attempt) {
    const int k = static_cast<int>(next() % 40) + 1;
    CrashResumeCycleAt(k);
    if (HasFatalFailure()) return;
  }
  EXPECT_GE(g_crash_runs, 50)
      << "the harness must exercise at least 50 injected crash runs";
}

}  // namespace
}  // namespace extscc

#endif  // EXTSCC_TOOL_PATH
