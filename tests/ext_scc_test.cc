#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/ext_scc.h"
#include "gen/classic_graphs.h"
#include "graph/disk_graph.h"
#include "io/record_stream.h"
#include "scc/scc_verify.h"
#include "test_util.h"

namespace extscc {
namespace {

using core::ExtSccOptions;
using core::RunExtScc;
using graph::Edge;
using graph::NodeId;
using testing::MakeTestContext;

// Budget small enough that only `max_semi_nodes` nodes can be solved
// semi-externally — forces contraction iterations for anything larger.
// Block size shrinks with the budget to respect the model's M >= 2B.
std::unique_ptr<io::IoContext> TightContext(std::uint64_t max_semi_nodes) {
  const std::uint64_t memory =
      scc::SemiExternalScc::kBytesPerNode * max_semi_nodes;
  const auto block = static_cast<std::size_t>(
      std::max<std::uint64_t>(32, std::min<std::uint64_t>(1024, memory / 2)));
  return MakeTestContext(memory, block);
}

void RunAndVerify(io::IoContext* ctx, const graph::DiskGraph& g,
                  const ExtSccOptions& options, const char* label,
                  std::uint32_t min_levels = 0) {
  const std::string out = ctx->NewTempPath("scc_out");
  auto result = RunExtScc(ctx, g, out, options);
  ASSERT_TRUE(result.ok()) << label << ": " << result.status().ToString();
  EXPECT_GE(result.value().num_levels(), min_levels) << label;
  testing::ExpectSccFileMatchesOracle(ctx, g, out, label);
  EXPECT_EQ(io::NumRecordsInFile<graph::SccEntry>(ctx, out), g.num_nodes)
      << label;
}

TEST(ExtSccTest, Fig1NoContractionNeeded) {
  auto ctx = MakeTestContext();  // 1 MB: 13 nodes easily fit
  const auto g = graph::MakeDiskGraph(ctx.get(), gen::Fig1Edges());
  const std::string out = ctx->NewTempPath("out");
  auto result = RunExtScc(ctx.get(), g, out, ExtSccOptions::Basic());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_levels(), 0u);
  EXPECT_EQ(result.value().num_sccs, 5u);
  testing::ExpectSccFileMatchesOracle(ctx.get(), g, out, "fig1");
}

TEST(ExtSccTest, Fig1ForcedContraction) {
  // Allow at most 4 nodes in memory: the 13-node graph needs contracting,
  // mirroring Example 5.1's walkthrough (M holds three nodes there).
  auto ctx = TightContext(4);
  const auto g = graph::MakeDiskGraph(ctx.get(), gen::Fig1Edges());
  RunAndVerify(ctx.get(), g, ExtSccOptions::Basic(), "fig1-contracted",
               /*min_levels=*/1);
  auto ctx2 = TightContext(4);
  const auto g2 = graph::MakeDiskGraph(ctx2.get(), gen::Fig1Edges());
  RunAndVerify(ctx2.get(), g2, ExtSccOptions::Optimized(),
               "fig1-contracted-op", /*min_levels=*/1);
}

TEST(ExtSccTest, BrTreeBackendForcedContraction) {
  // Same forced-contraction setup, with the paper's spanning-tree base
  // case selected. The partition and the iteration structure must match
  // the colouring backend exactly (both charge 16 B/node).
  for (const bool optimized : {false, true}) {
    auto ctx = TightContext(4);
    const auto g = graph::MakeDiskGraph(ctx.get(), gen::Fig1Edges());
    ExtSccOptions options =
        optimized ? ExtSccOptions::Optimized() : ExtSccOptions::Basic();
    options.semi_backend = scc::SemiSccBackend::kBrTree;
    RunAndVerify(ctx.get(), g, options,
                 optimized ? "fig1-brtree-op" : "fig1-brtree",
                 /*min_levels=*/1);
  }
}

TEST(ExtSccTest, BackendsProduceIdenticalLevelStructure) {
  auto run_levels = [](scc::SemiSccBackend backend) {
    auto ctx = TightContext(30);
    const auto g = graph::MakeDiskGraph(
        ctx.get(), gen::RandomDigraphEdges(120, 360, 11));
    const std::string out = ctx->NewTempPath("scc_out");
    ExtSccOptions options = ExtSccOptions::Basic();
    options.semi_backend = backend;
    auto result = RunExtScc(ctx.get(), g, out, options);
    EXPECT_TRUE(result.ok());
    return result.value().num_levels();
  };
  EXPECT_EQ(run_levels(scc::SemiSccBackend::kColoring),
            run_levels(scc::SemiSccBackend::kBrTree));
}

TEST(ExtSccTest, EmptyGraph) {
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), {});
  const std::string out = ctx->NewTempPath("out");
  auto result = RunExtScc(ctx.get(), g, out, ExtSccOptions::Basic());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_sccs, 0u);
}

TEST(ExtSccTest, IsolatedNodesOnly) {
  auto ctx = TightContext(4);
  const auto g = graph::MakeDiskGraph(ctx.get(), {}, {1, 2, 3, 4, 5, 6, 7});
  RunAndVerify(ctx.get(), g, ExtSccOptions::Basic(), "isolated");
}

TEST(ExtSccTest, LargeCycleManyLevels) {
  auto ctx = TightContext(16);
  const auto g = graph::MakeDiskGraph(ctx.get(), gen::CycleEdges(200));
  const std::string out = ctx->NewTempPath("out");
  auto result = RunExtScc(ctx.get(), g, out, ExtSccOptions::Basic());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result.value().num_levels(), 2u)
      << "200 nodes -> <=16 in memory needs several halvings";
  EXPECT_EQ(result.value().num_sccs, 1u);
  testing::ExpectSccFileMatchesOracle(ctx.get(), g, out, "cycle200");
}

TEST(ExtSccTest, DagGraph) {
  // EM-SCC's Case-2 shape: a DAG bigger than memory. Ext-SCC must
  // terminate and label every node a singleton.
  auto ctx = TightContext(32);
  const auto g =
      graph::MakeDiskGraph(ctx.get(), gen::RandomDagEdges(300, 900, 13));
  const std::string out = ctx->NewTempPath("out");
  auto result = RunExtScc(ctx.get(), g, out, ExtSccOptions::Basic());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().num_sccs, g.num_nodes);
  testing::ExpectSccFileMatchesOracle(ctx.get(), g, out, "dag");
}

TEST(ExtSccTest, StatsAreCoherent) {
  auto ctx = TightContext(48);
  const auto g = graph::MakeDiskGraph(
      ctx.get(), gen::RandomDigraphEdges(150, 450, 19, true));
  const std::string out = ctx->NewTempPath("out");
  auto result = RunExtScc(ctx.get(), g, out, ExtSccOptions::Basic());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& stats = result.value();
  ASSERT_GE(stats.num_levels(), 1u);
  // Node counts strictly decrease level to level (Lemma 5.2).
  for (std::size_t i = 0; i < stats.iterations.size(); ++i) {
    EXPECT_LT(stats.iterations[i].cover_nodes, stats.iterations[i].nodes);
    if (i > 0) {
      EXPECT_EQ(stats.iterations[i].nodes,
                stats.iterations[i - 1].cover_nodes);
    }
  }
  EXPECT_LE(stats.semi_nodes,
            ctx->memory().total_bytes() /
                scc::SemiExternalScc::kBytesPerNode)
      << "Semi-SCC ran within the stop condition";
  EXPECT_GT(stats.total_ios, 0u);
  EXPECT_GT(stats.total_seconds, 0.0);
}

TEST(ExtSccTest, OpModeProducesIdenticalPartition) {
  auto ctx = TightContext(48);
  const auto edges = gen::RandomDigraphEdges(150, 450, 23, true);
  const auto g = graph::MakeDiskGraph(ctx.get(), edges);
  const std::string out_basic = ctx->NewTempPath("basic");
  const std::string out_op = ctx->NewTempPath("op");
  ASSERT_TRUE(
      RunExtScc(ctx.get(), g, out_basic, ExtSccOptions::Basic()).ok());
  ASSERT_TRUE(
      RunExtScc(ctx.get(), g, out_op, ExtSccOptions::Optimized()).ok());
  const auto a = scc::LoadSccResult(ctx.get(), out_basic);
  const auto b = scc::LoadSccResult(ctx.get(), out_op);
  EXPECT_TRUE(scc::SamePartition(a, b))
      << scc::ExplainPartitionDifference(a, b);
}

TEST(ExtSccTest, OpModeReducesWorkOnDenseGraphs) {
  // The §VII claim: Op-mode prunes nodes/edges per iteration. Compare
  // total I/Os on a graph with parallel edges and many sources/sinks.
  auto edges = gen::RandomDigraphEdges(200, 800, 29, true);
  const auto run = [&](const ExtSccOptions& options) {
    auto ctx = TightContext(64);
    const auto g = graph::MakeDiskGraph(ctx.get(), edges);
    const std::string out = ctx->NewTempPath("out");
    const auto before = ctx->stats().total_ios();
    auto result = RunExtScc(ctx.get(), g, out, options);
    EXPECT_TRUE(result.ok());
    return ctx->stats().total_ios() - before;
  };
  const auto basic_ios = run(ExtSccOptions::Basic());
  const auto op_ios = run(ExtSccOptions::Optimized());
  EXPECT_LT(op_ios, basic_ios);
}

TEST(ExtSccTest, IoBudgetCensoring) {
  auto ctx = TightContext(16);
  ctx->set_io_budget(10);  // absurdly small
  const auto g = graph::MakeDiskGraph(ctx.get(), gen::CycleEdges(200));
  const std::string out = ctx->NewTempPath("out");
  auto result = RunExtScc(ctx.get(), g, out, ExtSccOptions::Basic());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kResourceExhausted);
}

// Parameterized end-to-end sweep over memory budgets: correctness must be
// independent of how many contraction levels the budget forces.
class ExtSccBudgetSweep
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(ExtSccBudgetSweep, CorrectUnderAnyBudget) {
  const auto [max_semi_nodes, op_mode] = GetParam();
  auto ctx = TightContext(max_semi_nodes);
  const auto g = graph::MakeDiskGraph(
      ctx.get(), gen::RandomDigraphEdges(150, 450, max_semi_nodes, true));
  RunAndVerify(ctx.get(), g,
               op_mode ? ExtSccOptions::Optimized() : ExtSccOptions::Basic(),
               "budget-sweep");
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, ExtSccBudgetSweep,
    ::testing::Combine(::testing::Values(16, 32, 64, 128, 1024),
                       ::testing::Bool()));

}  // namespace
}  // namespace extscc
