// Cross-algorithm property suite: every SCC algorithm in the library must
// induce the same partition on the same graph, across a randomized corpus
// of shapes (ER digraphs, DAGs, planted SCCs, webgraphs, degenerate
// inputs), and the §V invariants must hold level by level.
#include <gtest/gtest.h>

#include <vector>

#include "baseline/dfs_scc.h"
#include "baseline/em_scc.h"
#include "baseline/semi_dfs_scc.h"
#include "scc/br_tree_scc.h"
#include "core/ext_scc.h"
#include "gen/classic_graphs.h"
#include "gen/rmat_generator.h"
#include "gen/synthetic_generator.h"
#include "gen/webgraph_generator.h"
#include "graph/disk_graph.h"
#include "scc/scc_verify.h"
#include "scc/semi_external_scc.h"
#include "test_util.h"

namespace extscc {
namespace {

using core::ExtSccOptions;
using graph::Edge;
using testing::MakeTestContext;

struct Corpus {
  std::string name;
  std::vector<Edge> edges;
  std::vector<graph::NodeId> extra_nodes;
};

std::vector<Corpus> BuildCorpus() {
  std::vector<Corpus> corpus;
  corpus.push_back({"fig1", gen::Fig1Edges(), {}});
  corpus.push_back({"cycle64", gen::CycleEdges(64), {}});
  corpus.push_back({"path64", gen::PathEdges(64), {}});
  corpus.push_back({"complete8", gen::CompleteDigraphEdges(8), {}});
  corpus.push_back({"chains", gen::CycleChainEdges(8, 7), {}});
  corpus.push_back({"dag", gen::RandomDagEdges(120, 500, 51), {}});
  corpus.push_back(
      {"er_sparse", gen::RandomDigraphEdges(150, 200, 52, true), {}});
  corpus.push_back(
      {"er_dense", gen::RandomDigraphEdges(120, 1200, 53, true), {}});
  corpus.push_back({"isolated", {{1, 2}, {2, 1}}, {100, 200, 300}});
  corpus.push_back({"selfloops",
                    {{1, 1}, {2, 2}, {1, 2}, {2, 3}, {3, 1}},
                    {9}});
  return corpus;
}

// All-algorithms agreement on every corpus entry, under a budget tight
// enough to force Ext-SCC contraction.
TEST(CrossAlgorithmTest, AllAlgorithmsAgreeOnCorpus) {
  for (const auto& entry : BuildCorpus()) {
    SCOPED_TRACE(entry.name);
    auto ctx = MakeTestContext(/*memory_bytes=*/2048, /*block_size=*/256);
    const auto g =
        graph::MakeDiskGraph(ctx.get(), entry.edges, entry.extra_nodes);
    const auto oracle = scc::OraclePartition(ctx.get(), g);

    // Ext-SCC basic + optimized.
    for (const bool op : {false, true}) {
      const std::string out = ctx->NewTempPath("ext");
      auto result = core::RunExtScc(
          ctx.get(), g, out,
          op ? ExtSccOptions::Optimized() : ExtSccOptions::Basic());
      ASSERT_TRUE(result.ok())
          << entry.name << ": " << result.status().ToString();
      const auto partition = scc::LoadSccResult(ctx.get(), out);
      EXPECT_TRUE(scc::SamePartition(oracle, partition))
          << entry.name << (op ? " op: " : " basic: ")
          << scc::ExplainPartitionDifference(oracle, partition);
    }

    // DFS-SCC (uncensored).
    {
      const std::string out = ctx->NewTempPath("dfs");
      auto result = baseline::RunDfsScc(ctx.get(), g, out);
      ASSERT_TRUE(result.ok()) << entry.name;
      const auto partition = scc::LoadSccResult(ctx.get(), out);
      EXPECT_TRUE(scc::SamePartition(oracle, partition))
          << entry.name << " dfs: "
          << scc::ExplainPartitionDifference(oracle, partition);
    }

    // EM-SCC: must either agree or stall (never a wrong answer).
    {
      const std::string out = ctx->NewTempPath("em");
      auto result = baseline::RunEmScc(ctx.get(), g, out);
      if (result.ok()) {
        const auto partition = scc::LoadSccResult(ctx.get(), out);
        EXPECT_TRUE(scc::SamePartition(oracle, partition))
            << entry.name << " em: "
            << scc::ExplainPartitionDifference(oracle, partition);
      } else {
        EXPECT_EQ(result.status().code(),
                  util::StatusCode::kFailedPrecondition)
            << entry.name;
      }
    }

    // Ext-SCC with the BR-tree base case — identical partition again.
    {
      auto roomy = MakeTestContext(/*memory_bytes=*/2048,
                                   /*block_size=*/256);
      const auto g2 =
          graph::MakeDiskGraph(roomy.get(), entry.edges, entry.extra_nodes);
      const std::string out = roomy->NewTempPath("ext_brt");
      ExtSccOptions options = ExtSccOptions::Optimized();
      options.semi_backend = scc::SemiSccBackend::kBrTree;
      auto result = core::RunExtScc(roomy.get(), g2, out, options);
      ASSERT_TRUE(result.ok())
          << entry.name << ": " << result.status().ToString();
      const auto partition = scc::LoadSccResult(roomy.get(), out);
      EXPECT_TRUE(scc::SamePartition(oracle, partition))
          << entry.name << " brtree: "
          << scc::ExplainPartitionDifference(oracle, partition);
    }

    // Semi-DFS-SCC needs c*|V| in memory: give it a roomy context.
    {
      auto roomy = MakeTestContext();
      const auto g2 =
          graph::MakeDiskGraph(roomy.get(), entry.edges, entry.extra_nodes);
      const std::string out = roomy->NewTempPath("sdfs");
      auto result = baseline::SemiDfsScc::Run(roomy.get(), g2, out);
      ASSERT_TRUE(result.ok()) << entry.name;
      const auto partition = scc::LoadSccResult(roomy.get(), out);
      EXPECT_TRUE(scc::SamePartition(oracle, partition))
          << entry.name << " semi-dfs: "
          << scc::ExplainPartitionDifference(oracle, partition);
    }
  }
}

// R-MAT graphs: heavy-tailed hubs are the adversarial case for the
// vertex-cover contraction (hubs never leave the cover) and the E_add
// fan-out bound (Theorem 5.4).
TEST(CrossAlgorithmTest, RmatGraphsAgreeWithOracle) {
  for (const std::uint64_t seed : {1, 2, 3}) {
    SCOPED_TRACE(seed);
    auto ctx = MakeTestContext(/*memory_bytes=*/4096, /*block_size=*/512);
    gen::RmatParams params;
    params.num_nodes = 600;
    params.num_edges = 2400;
    params.seed = seed;
    const auto g = gen::GenerateRmat(ctx.get(), params);
    const auto oracle = scc::OraclePartition(ctx.get(), g);
    for (const bool op : {false, true}) {
      const std::string out = ctx->NewTempPath("ext");
      auto result = core::RunExtScc(
          ctx.get(), g, out,
          op ? ExtSccOptions::Optimized() : ExtSccOptions::Basic());
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_GE(result.value().num_levels(), 1u)
          << "node set must not fit at this budget";
      const auto partition = scc::LoadSccResult(ctx.get(), out);
      EXPECT_TRUE(scc::SamePartition(oracle, partition))
          << scc::ExplainPartitionDifference(oracle, partition);
    }
  }
}

// Randomized sweep: Ext-SCC (both modes) vs oracle over a larger seed
// grid than the per-module suites.
class ExtSccRandomSweep
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(ExtSccRandomSweep, MatchesOracle) {
  const auto [nodes, density, seed] = GetParam();
  const auto edges = gen::RandomDigraphEdges(
      nodes, static_cast<std::uint64_t>(nodes * density), seed,
      /*allow_degenerate=*/true);
  auto ctx = MakeTestContext(/*memory_bytes=*/
                             scc::SemiExternalScc::kBytesPerNode * 48,
                             /*block_size=*/256);
  const auto g = graph::MakeDiskGraph(ctx.get(), edges);
  const auto oracle = scc::OraclePartition(ctx.get(), g);
  for (const bool op : {false, true}) {
    const std::string out = ctx->NewTempPath("out");
    auto result = core::RunExtScc(
        ctx.get(), g, out,
        op ? ExtSccOptions::Optimized() : ExtSccOptions::Basic());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const auto partition = scc::LoadSccResult(ctx.get(), out);
    ASSERT_TRUE(scc::SamePartition(oracle, partition))
        << "nodes=" << nodes << " density=" << density << " seed=" << seed
        << " op=" << op << ": "
        << scc::ExplainPartitionDifference(oracle, partition);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedGrid, ExtSccRandomSweep,
    ::testing::Combine(::testing::Values(60, 120, 200),
                       ::testing::Values(0.5, 1.5, 3.0),
                       ::testing::Values(101, 102, 103)));

// Planted-SCC workloads: the generated structure must be recovered
// exactly by Ext-SCC under contraction pressure.
TEST(PlantedSccTest, ExtSccRecoversPlantedStructure) {
  auto ctx = MakeTestContext(/*memory_bytes=*/
                             scc::SemiExternalScc::kBytesPerNode * 64,
                             /*block_size=*/256);
  gen::SyntheticParams params;
  params.num_nodes = 600;
  params.sccs = {{2, 60}, {5, 8}};
  params.extra_random_edges = false;
  params.seed = 77;
  const auto g = gen::GenerateSynthetic(ctx.get(), params);
  const std::string out = ctx->NewTempPath("out");
  auto result =
      core::RunExtScc(ctx.get(), g, out, ExtSccOptions::Optimized());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto partition = scc::LoadSccResult(ctx.get(), out);
  auto sizes = partition.SortedComponentSizes();
  ASSERT_GE(sizes.size(), 7u);
  EXPECT_EQ(sizes[0], 60u);
  EXPECT_EQ(sizes[1], 60u);
  for (int i = 2; i < 7; ++i) EXPECT_EQ(sizes[i], 8u);
}

// Webgraph under contraction pressure, both modes agree with the oracle.
TEST(WebGraphPropertyTest, ExtSccCorrectOnWebGraph) {
  auto ctx = MakeTestContext(/*memory_bytes=*/
                             scc::SemiExternalScc::kBytesPerNode * 384,
                             /*block_size=*/512);
  gen::WebGraphParams params;
  params.num_nodes = 1500;
  params.avg_out_degree = 5.0;
  params.seed = 88;
  const auto g = gen::GenerateWebGraph(ctx.get(), params);
  const auto oracle = scc::OraclePartition(ctx.get(), g);
  for (const bool op : {false, true}) {
    const std::string out = ctx->NewTempPath("out");
    auto result = core::RunExtScc(
        ctx.get(), g, out,
        op ? ExtSccOptions::Optimized() : ExtSccOptions::Basic());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const auto partition = scc::LoadSccResult(ctx.get(), out);
    ASSERT_TRUE(scc::SamePartition(oracle, partition))
        << scc::ExplainPartitionDifference(oracle, partition);
  }
}

}  // namespace
}  // namespace extscc
