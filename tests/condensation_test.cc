#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "core/ext_scc.h"
#include "gen/classic_graphs.h"
#include "graph/disk_graph.h"
#include "graph/scc_file.h"
#include "io/record_stream.h"
#include "scc/condensation.h"
#include "scc/scc_verify.h"
#include "test_util.h"

namespace extscc {
namespace {

using graph::Edge;
using graph::NodeId;
using graph::SccEntry;
using testing::MakeTestContext;

// Solves `edges` with Ext-SCC and returns (graph, scc label path).
std::pair<graph::DiskGraph, std::string> Solve(
    io::IoContext* ctx, const std::vector<Edge>& edges,
    const std::vector<NodeId>& extra = {}) {
  const auto g = graph::MakeDiskGraph(ctx, edges, extra);
  const std::string scc = ctx->NewTempPath("scc");
  auto result =
      core::RunExtScc(ctx, g, scc, core::ExtSccOptions::Optimized());
  CHECK(result.ok());
  return {g, scc};
}

TEST(CondensationTest, Fig1Dag) {
  auto ctx = MakeTestContext();
  const auto [g, scc_path] = Solve(ctx.get(), gen::Fig1Edges());
  const auto cond = scc::BuildCondensation(ctx.get(), g, scc_path);
  // 5 SCCs; DAG edges: a->SCC1, a->SCC1 (a->f merges), SCC1->h, h->SCC2,
  // SCC2->m  => simple edges {a->SCC1, SCC1->h, h->SCC2, SCC2->m}.
  EXPECT_EQ(cond.dag.num_nodes, 5u);
  EXPECT_EQ(cond.dag.num_edges, 4u);
  EXPECT_GT(cond.intra_scc_edges, 0u);
  EXPECT_GT(cond.parallel_edges, 0u) << "a->b and a->f collapse";
}

TEST(CondensationTest, CycleCondensesToSingleNode) {
  auto ctx = MakeTestContext();
  const auto [g, scc_path] = Solve(ctx.get(), gen::CycleEdges(30));
  const auto cond = scc::BuildCondensation(ctx.get(), g, scc_path);
  EXPECT_EQ(cond.dag.num_nodes, 1u);
  EXPECT_EQ(cond.dag.num_edges, 0u);
  EXPECT_EQ(cond.intra_scc_edges, 30u);
}

TEST(CondensationTest, DagIsUnchangedUpToRelabeling) {
  auto ctx = MakeTestContext();
  const auto edges = gen::RandomDagEdges(100, 300, 5);
  const auto [g, scc_path] = Solve(ctx.get(), edges);
  const auto cond = scc::BuildCondensation(ctx.get(), g, scc_path);
  EXPECT_EQ(cond.dag.num_nodes, g.num_nodes);
  EXPECT_EQ(cond.intra_scc_edges, 0u);
  // Parallel duplicates in the generator collapse; nothing else changes.
  EXPECT_LE(cond.dag.num_edges, g.num_edges);
}

TEST(CondensationTest, CondensationIsAcyclic) {
  auto ctx = MakeTestContext();
  const auto edges =
      gen::RandomDigraphEdges(300, 1200, 7, /*allow_degenerate=*/true);
  const auto [g, scc_path] = Solve(ctx.get(), edges);
  const auto cond = scc::BuildCondensation(ctx.get(), g, scc_path);
  const auto topo = scc::ExternalTopoSort(ctx.get(), cond.dag);
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();
  EXPECT_EQ(topo.value().ranked_nodes, cond.dag.num_nodes);
}

TEST(CondensationTest, TopoRanksRespectEdges) {
  auto ctx = MakeTestContext();
  const auto edges =
      gen::RandomDigraphEdges(150, 450, 9, /*allow_degenerate=*/true);
  const auto [g, scc_path] = Solve(ctx.get(), edges);
  const auto cond = scc::BuildCondensation(ctx.get(), g, scc_path);
  const auto topo = scc::ExternalTopoSort(ctx.get(), cond.dag);
  ASSERT_TRUE(topo.ok());
  const auto ranks = graph::ReadSccFile(ctx.get(), topo.value().rank_path);
  const auto dag_edges =
      io::ReadAllRecords<Edge>(ctx.get(), cond.dag.edge_path);
  for (const auto& e : dag_edges) {
    ASSERT_LT(ranks.at(e.src), ranks.at(e.dst))
        << "edge " << e.src << "->" << e.dst << " violates topo order";
  }
}

TEST(ExternalTopoSortTest, PathLevels) {
  auto ctx = MakeTestContext();
  const auto dag = graph::MakeDiskGraph(ctx.get(), gen::PathEdges(6));
  const auto topo = scc::ExternalTopoSort(ctx.get(), dag);
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo.value().num_levels, 6u);
  const auto ranks = graph::ReadSccFile(ctx.get(), topo.value().rank_path);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(ranks.at(v), v);
}

TEST(ExternalTopoSortTest, WideDagHasFewLevels) {
  auto ctx = MakeTestContext();
  // Star from 0 to 1..20: two levels.
  std::vector<Edge> star;
  for (NodeId leaf = 1; leaf <= 20; ++leaf) star.push_back({0, leaf});
  const auto dag = graph::MakeDiskGraph(ctx.get(), star);
  const auto topo = scc::ExternalTopoSort(ctx.get(), dag);
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo.value().num_levels, 2u);
}

TEST(ExternalTopoSortTest, DetectsCycles) {
  auto ctx = MakeTestContext();
  const auto not_a_dag = graph::MakeDiskGraph(ctx.get(), gen::CycleEdges(5));
  const auto topo = scc::ExternalTopoSort(ctx.get(), not_a_dag);
  ASSERT_FALSE(topo.ok());
  EXPECT_EQ(topo.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(ExternalTopoSortTest, EmptyAndIsolated) {
  auto ctx = MakeTestContext();
  const auto empty = graph::MakeDiskGraph(ctx.get(), {});
  auto topo = scc::ExternalTopoSort(ctx.get(), empty);
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo.value().num_levels, 0u);

  const auto isolated = graph::MakeDiskGraph(ctx.get(), {}, {3, 8});
  topo = scc::ExternalTopoSort(ctx.get(), isolated);
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo.value().num_levels, 1u);
  EXPECT_EQ(topo.value().ranked_nodes, 2u);
}

}  // namespace
}  // namespace extscc
