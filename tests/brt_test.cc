#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "baseline/buffered_repository_tree.h"
#include "baseline/external_dfs.h"
#include "test_util.h"
#include "util/random.h"

namespace extscc {
namespace {

using baseline::BufferedRepositoryTree;
using baseline::ExternalStack;
using testing::MakeTestContext;

TEST(BrtTest, InsertExtractSingleKey) {
  auto ctx = MakeTestContext();
  BufferedRepositoryTree brt(ctx.get(), 16);
  brt.Insert(3, 100);
  brt.Insert(3, 200);
  EXPECT_EQ(brt.num_items(), 2u);
  auto values = brt.ExtractAll(3);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, (std::vector<std::uint32_t>{100, 200}));
  EXPECT_EQ(brt.num_items(), 0u);
  EXPECT_TRUE(brt.ExtractAll(3).empty()) << "extract removes items";
}

TEST(BrtTest, ExtractOnlyMatchingKey) {
  auto ctx = MakeTestContext();
  BufferedRepositoryTree brt(ctx.get(), 8);
  brt.Insert(1, 11);
  brt.Insert(2, 22);
  brt.Insert(1, 12);
  auto ones = brt.ExtractAll(1);
  std::sort(ones.begin(), ones.end());
  EXPECT_EQ(ones, (std::vector<std::uint32_t>{11, 12}));
  EXPECT_EQ(brt.ExtractAll(2), (std::vector<std::uint32_t>{22}));
}

TEST(BrtTest, EmptyExtract) {
  auto ctx = MakeTestContext();
  BufferedRepositoryTree brt(ctx.get(), 4);
  EXPECT_TRUE(brt.ExtractAll(0).empty());
  EXPECT_TRUE(brt.ExtractAll(3).empty());
}

TEST(BrtTest, NonPowerOfTwoKeySpace) {
  auto ctx = MakeTestContext();
  BufferedRepositoryTree brt(ctx.get(), 13);
  for (std::uint32_t k = 0; k < 13; ++k) brt.Insert(k, k * 10);
  for (std::uint32_t k = 0; k < 13; ++k) {
    EXPECT_EQ(brt.ExtractAll(k), (std::vector<std::uint32_t>{k * 10}));
  }
}

TEST(BrtTest, ManyInsertsForceFlushes) {
  // Small blocks so buffers overflow and cascade down the tree.
  auto ctx = MakeTestContext(/*memory_bytes=*/1 << 20, /*block_size=*/256);
  BufferedRepositoryTree brt(ctx.get(), 64);
  std::map<std::uint32_t, std::vector<std::uint32_t>> expected;
  util::Rng rng(77);
  for (int i = 0; i < 5000; ++i) {
    const auto key = static_cast<std::uint32_t>(rng.Uniform(64));
    const auto value = static_cast<std::uint32_t>(i);
    brt.Insert(key, value);
    expected[key].push_back(value);
  }
  EXPECT_EQ(brt.num_items(), 5000u);
  for (auto& [key, want] : expected) {
    auto got = brt.ExtractAll(key);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "key " << key;
  }
  EXPECT_EQ(brt.num_items(), 0u);
}

TEST(BrtTest, InterleavedInsertExtract) {
  auto ctx = MakeTestContext(/*memory_bytes=*/1 << 20, /*block_size=*/256);
  BufferedRepositoryTree brt(ctx.get(), 32);
  util::Rng rng(5);
  std::map<std::uint32_t, std::vector<std::uint32_t>> expected;
  for (int round = 0; round < 2000; ++round) {
    const auto key = static_cast<std::uint32_t>(rng.Uniform(32));
    if (rng.Bernoulli(0.7)) {
      brt.Insert(key, round);
      expected[key].push_back(round);
    } else {
      auto got = brt.ExtractAll(key);
      std::sort(got.begin(), got.end());
      std::sort(expected[key].begin(), expected[key].end());
      EXPECT_EQ(got, expected[key]) << "round " << round;
      expected[key].clear();
    }
  }
}

TEST(BrtTest, GeneratesIoTraffic) {
  auto ctx = MakeTestContext(/*memory_bytes=*/1 << 20, /*block_size=*/256);
  const auto before = ctx->stats().total_ios();
  BufferedRepositoryTree brt(ctx.get(), 128);
  for (std::uint32_t i = 0; i < 2000; ++i) brt.Insert(i % 128, i);
  for (std::uint32_t k = 0; k < 128; ++k) brt.ExtractAll(k);
  EXPECT_GT(ctx->stats().total_ios() - before, 100u)
      << "the BRT is an external structure; it must touch disk";
}

// ---------------- ExternalStack ------------------------------------------

TEST(ExternalStackTest, LifoSmall) {
  auto ctx = MakeTestContext();
  ExternalStack<int> stack(ctx.get());
  EXPECT_TRUE(stack.empty());
  stack.Push(1);
  stack.Push(2);
  EXPECT_EQ(stack.size(), 2u);
  EXPECT_EQ(stack.Pop(), 2);
  EXPECT_EQ(stack.Pop(), 1);
  EXPECT_TRUE(stack.empty());
}

TEST(ExternalStackTest, SpillsAndRefills) {
  auto ctx = MakeTestContext(/*memory_bytes=*/1 << 20, /*block_size=*/128);
  ExternalStack<std::uint64_t> stack(ctx.get());
  constexpr std::uint64_t kCount = 10'000;  // far beyond two 128B blocks
  for (std::uint64_t i = 0; i < kCount; ++i) stack.Push(i);
  EXPECT_EQ(stack.size(), kCount);
  for (std::uint64_t i = kCount; i-- > 0;) {
    ASSERT_EQ(stack.Pop(), i);
  }
  EXPECT_TRUE(stack.empty());
}

TEST(ExternalStackTest, InterleavedPushPopAcrossSpills) {
  auto ctx = MakeTestContext(/*memory_bytes=*/1 << 20, /*block_size=*/128);
  ExternalStack<std::uint32_t> stack(ctx.get());
  std::vector<std::uint32_t> mirror;
  util::Rng rng(9);
  for (int i = 0; i < 20'000; ++i) {
    if (mirror.empty() || rng.Bernoulli(0.6)) {
      stack.Push(i);
      mirror.push_back(i);
    } else {
      ASSERT_EQ(stack.Pop(), mirror.back());
      mirror.pop_back();
    }
    ASSERT_EQ(stack.size(), mirror.size());
  }
}

}  // namespace
}  // namespace extscc
