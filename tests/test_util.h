// Shared fixtures/helpers for the extscc test suites.
#ifndef EXTSCC_TESTS_TEST_UTIL_H_
#define EXTSCC_TESTS_TEST_UTIL_H_

#include <memory>
#include <vector>

#include "graph/disk_graph.h"
#include "graph/graph_types.h"
#include "io/io_context.h"
#include "scc/scc_result.h"

namespace extscc::testing {

// Fresh IoContext with a small block size so even tiny inputs span
// multiple blocks (exercises the block machinery), and a budget large
// enough that in-memory fast paths fit.
std::unique_ptr<io::IoContext> MakeTestContext(
    std::uint64_t memory_bytes = 1 << 20, std::size_t block_size = 4096);

// In-memory oracle partition of an edge list (+ optional isolated nodes).
scc::SccResult Oracle(const std::vector<graph::Edge>& edges,
                      const std::vector<graph::NodeId>& extra_nodes = {});

// Asserts (gtest EXPECT) that `scc_path` matches the oracle of `g`.
void ExpectSccFileMatchesOracle(io::IoContext* context,
                                const graph::DiskGraph& g,
                                const std::string& scc_path,
                                const char* label);

}  // namespace extscc::testing

#endif  // EXTSCC_TESTS_TEST_UTIL_H_
