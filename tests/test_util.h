// Shared fixtures/helpers for the extscc test suites.
#ifndef EXTSCC_TESTS_TEST_UTIL_H_
#define EXTSCC_TESTS_TEST_UTIL_H_

#include <memory>
#include <vector>

#include "graph/digraph.h"
#include "graph/disk_graph.h"
#include "graph/graph_types.h"
#include "io/io_context.h"
#include "scc/scc_result.h"

namespace extscc::testing {

// Applies the test-matrix environment overrides to `options`:
//  - EXTSCC_TEST_SORT_THREADS=N: overlapped run formation (the threaded
//    CI job sets 1; sorted outputs are byte-identical by design).
//  - EXTSCC_TEST_IO_THREADS=N: device-parallel I/O workers (the TSan CI
//    job sets 2; sorted outputs are byte-identical by design).
//  - EXTSCC_TEST_DEVICE_MODEL=posix|mem|throttled[:lat_us[:mb_per_s]]
//    |faulty[:seed=S,rate=R,...]: scratch device backing (the
//    multidevice CI job sets throttled; the chaos job sets faulty with
//    a transient-only rate, so every suite solves through injected
//    EIO + retries).
//  - EXTSCC_TEST_SCRATCH_DIRS=a,b: one scratch device per entry.
//  - EXTSCC_TEST_PLACEMENT=rr|spread|striped: scratch placement policy
//    (the multidevice CI job runs the engine suites at striped so every
//    scratch file's blocks fan out across the simulated disks).
// Suites that build IoContextOptions by hand call this so the CI matrix
// reaches them too.
void ApplyTestEnvOptions(io::IoContextOptions* options);

// Fresh IoContext with a small block size so even tiny inputs span
// multiple blocks (exercises the block machinery), and a budget large
// enough that in-memory fast paths fit. Posix scratch unless the
// environment overrides the device model.
std::unique_ptr<io::IoContext> MakeTestContext(
    std::uint64_t memory_bytes = 1 << 20, std::size_t block_size = 4096);

// Same geometry, MemDevice scratch: the pure-engine suites (extsort,
// record_sink, radix_sort, run_pipeline) run on RAM-backed devices —
// faster and tmpfs-independent, with block accounting identical to
// posix byte for byte. The environment overrides still win, so the
// multidevice CI job drives these suites through its simulated disks.
std::unique_ptr<io::IoContext> MakeMemTestContext(
    std::uint64_t memory_bytes = 1 << 20, std::size_t block_size = 4096);

// In-memory oracle partition of an edge list (+ optional isolated nodes).
scc::SccResult Oracle(const std::vector<graph::Edge>& edges,
                      const std::vector<graph::NodeId>& extra_nodes = {});

// Reachability oracle by direct search on `g` (graph::BfsReachable),
// taking external NodeIds. Ids absent from the graph reach only
// themselves — matching the index-side convention that an unlabelled
// node is its own singleton.
bool OracleReach(const graph::Digraph& g, graph::NodeId from,
                 graph::NodeId to);

// Asserts (gtest EXPECT) that `scc_path` matches the oracle of `g`.
void ExpectSccFileMatchesOracle(io::IoContext* context,
                                const graph::DiskGraph& g,
                                const std::string& scc_path,
                                const char* label);

}  // namespace extscc::testing

#endif  // EXTSCC_TESTS_TEST_UTIL_H_
