// Fused sort→consumer pipelines: sink-vs-file equivalence oracle, the
// single-run and empty-input fast paths, the staging-free SortingWriter,
// the membership-split sink, and the block-I/O guarantee that a fused
// pipeline never costs more than materialize-then-scan.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/membership_split.h"
#include "extsort/external_sorter.h"
#include "extsort/record_sink.h"
#include "graph/graph_types.h"
#include "io/record_stream.h"
#include "test_util.h"
#include "util/random.h"

namespace extscc {
namespace {

using testing::MakeMemTestContext;
using testing::MakeTestContext;

struct U64Less {
  bool operator()(std::uint64_t a, std::uint64_t b) const { return a < b; }
};

std::vector<std::uint64_t> RandomValues(std::size_t n, std::uint64_t seed,
                                        std::uint64_t bound) {
  util::Rng rng(seed);
  std::vector<std::uint64_t> out(n);
  for (auto& v : out) v = rng.Uniform(bound);
  return out;
}

// ---- sink-vs-file equivalence oracle ---------------------------------
// For every (geometry, dedup) draw, SortInto through a callback sink
// must deliver exactly the records SortFile materializes, in the same
// order.
TEST(SortIntoTest, SinkMatchesFileAcrossGeometries) {
  util::Rng rng(777);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t block = 512u << rng.Uniform(3);  // 512..2K
    const std::uint64_t memory = (2 + rng.Uniform(24)) * block;
    const std::size_t count = 200 + rng.Uniform(30'000);
    const std::uint64_t range = 1 + rng.Uniform(1u << 14);
    const bool dedup = rng.Uniform(2) == 1;
    auto ctx = MakeMemTestContext(memory, block);
    const auto values = RandomValues(count, rng.Next(), range);
    const std::string in = ctx->NewTempPath("in");
    io::WriteAllRecords(ctx.get(), in, values);

    const std::string file_out = ctx->NewTempPath("file");
    const auto file_info = extsort::SortFile<std::uint64_t, U64Less>(
        ctx.get(), in, file_out, U64Less(), dedup);
    const auto expected =
        io::ReadAllRecords<std::uint64_t>(ctx.get(), file_out);

    std::vector<std::uint64_t> streamed;
    auto sink = extsort::MakeCallbackSink<std::uint64_t>(
        [&](std::uint64_t v) { streamed.push_back(v); });
    const auto sink_info = extsort::SortInto<std::uint64_t>(
        ctx.get(), in, sink, U64Less(), dedup);

    EXPECT_EQ(streamed, expected)
        << "trial " << trial << " block=" << block << " mem=" << memory
        << " count=" << count << " dedup=" << dedup;
    EXPECT_EQ(sink_info.num_records, file_info.num_records);
  }
}

// ---- single-run promote into a callback sink -------------------------
// An input that fits the run buffer reaches the sink straight from
// memory: the only I/O is the input scan itself — zero writes.
TEST(SortIntoTest, SingleRunStreamsFromMemoryWithZeroWrites) {
  auto ctx = MakeMemTestContext(/*memory_bytes=*/1 << 20, /*block_size=*/4096);
  auto values = RandomValues(10'000, 29, 1u << 30);  // 80 KB: one run
  const std::string in = ctx->NewTempPath("in");
  io::WriteAllRecords(ctx.get(), in, values);
  const auto before = ctx->stats();
  std::vector<std::uint64_t> streamed;
  auto sink = extsort::MakeCallbackSink<std::uint64_t>(
      [&](std::uint64_t v) { streamed.push_back(v); });
  const auto info =
      extsort::SortInto<std::uint64_t>(ctx.get(), in, sink, U64Less());
  const auto delta = ctx->stats() - before;
  EXPECT_EQ(info.num_runs, 1u);
  EXPECT_EQ(info.merge_passes, 0u);
  const std::uint64_t file_blocks =
      (values.size() * sizeof(std::uint64_t) + 4095) / 4096;
  EXPECT_EQ(delta.total_reads(), file_blocks);
  EXPECT_EQ(delta.total_writes(), 0u)
      << "a fused in-memory sort must not touch the disk on the way out";
  std::sort(values.begin(), values.end());
  EXPECT_EQ(streamed, values);
}

TEST(SortIntoTest, EmptyInputDeliversNothing) {
  auto ctx = MakeMemTestContext();
  const std::string in = ctx->NewTempPath("in");
  io::WriteAllRecords<std::uint64_t>(ctx.get(), in, {});
  std::size_t received = 0;
  auto sink = extsort::MakeCallbackSink<std::uint64_t>(
      [&](std::uint64_t) { ++received; });
  const auto info =
      extsort::SortInto<std::uint64_t>(ctx.get(), in, sink, U64Less());
  EXPECT_EQ(info.num_records, 0u);
  EXPECT_EQ(received, 0u);
}

// ---- the fused path never exceeds the materializing path -------------
// Multi-run input, identical geometry: block I/Os of SortInto must stay
// strictly below SortFile + one full scan of its output (the fused
// stage deletes that write+read).
TEST(SortIntoTest, FusedNeverExceedsMaterializeThenScan) {
  const auto values = RandomValues(60'000, 41, 1u << 31);
  auto measure = [&](bool fused) {
    auto ctx = MakeMemTestContext(/*memory_bytes=*/16 << 10,
                               /*block_size=*/4096);
    const std::string in = ctx->NewTempPath("in");
    io::WriteAllRecords(ctx.get(), in, values);
    const auto before = ctx->stats();
    std::uint64_t checksum = 0;
    if (fused) {
      auto sink = extsort::MakeCallbackSink<std::uint64_t>(
          [&](std::uint64_t v) { checksum += v; });
      extsort::SortInto<std::uint64_t>(ctx.get(), in, sink, U64Less());
    } else {
      const std::string out = ctx->NewTempPath("out");
      extsort::SortFile<std::uint64_t, U64Less>(ctx.get(), in, out,
                                                U64Less());
      io::RecordReader<std::uint64_t> reader(ctx.get(), out);
      std::uint64_t v;
      while (reader.Next(&v)) checksum += v;
    }
    return std::pair<std::uint64_t, std::uint64_t>(
        (ctx->stats() - before).total_ios(), checksum);
  };
  const auto [fused_ios, fused_sum] = measure(true);
  const auto [file_ios, file_sum] = measure(false);
  EXPECT_EQ(fused_sum, file_sum);
  EXPECT_LT(fused_ios, file_ios)
      << "fusing must delete the output write+read";
  // The saving is exactly the sorted file's write plus its read-back
  // (modulo the one rounding block per direction).
  const std::uint64_t out_blocks =
      (values.size() * sizeof(std::uint64_t) + 4095) / 4096;
  EXPECT_LE(fused_ios + 2 * out_blocks, file_ios + 2u);
}

// ---- SortingWriter without a staging file ----------------------------
TEST(SortingWriterTest, BufferedInputReachesSinkWithZeroIo) {
  auto ctx = MakeMemTestContext(/*memory_bytes=*/1 << 20);
  extsort::SortingWriter<std::uint64_t, U64Less> writer(ctx.get(), U64Less(),
                                                        /*dedup=*/true);
  util::Rng rng(3);
  for (int i = 0; i < 5'000; ++i) writer.Add(rng.Uniform(700));
  const auto before = ctx->stats();
  std::vector<std::uint64_t> streamed;
  auto sink = extsort::MakeCallbackSink<std::uint64_t>(
      [&](std::uint64_t v) { streamed.push_back(v); });
  const auto info = writer.FinishInto(sink);
  const auto delta = ctx->stats() - before;
  EXPECT_EQ(delta.total_ios(), 0u)
      << "an in-budget accumulate→sort→consume stage must be pure memory";
  EXPECT_EQ(info.num_records, 5'000u);
  EXPECT_EQ(info.num_runs, 1u);
  EXPECT_EQ(streamed.size(), 700u);
  EXPECT_TRUE(std::is_sorted(streamed.begin(), streamed.end()));
}

TEST(SortingWriterTest, SpillingPathMatchesSortFileOracle) {
  // Budget of 16 KB forces several spilled runs; the sink stream must
  // agree with materializing the same adds through a file.
  auto values = RandomValues(40'000, 15, 1u << 20);
  auto ctx = MakeMemTestContext(/*memory_bytes=*/16 << 10);
  extsort::SortingWriter<std::uint64_t, U64Less> writer(ctx.get(), U64Less());
  for (const auto v : values) writer.Add(v);
  std::vector<std::uint64_t> streamed;
  auto sink = extsort::MakeCallbackSink<std::uint64_t>(
      [&](std::uint64_t v) { streamed.push_back(v); });
  const auto info = writer.FinishInto(sink);
  EXPECT_GT(info.num_runs, 1u);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(streamed, values);
}

TEST(SortingWriterTest, FileFinishIsSugarOverFileSink) {
  auto values = RandomValues(20'000, 57, 1u << 18);
  auto ctx = MakeMemTestContext(/*memory_bytes=*/16 << 10);
  extsort::SortingWriter<std::uint64_t, U64Less> writer(ctx.get(), U64Less(),
                                                        /*dedup=*/true);
  for (const auto v : values) writer.Add(v);
  const std::string out = ctx->NewTempPath("out");
  writer.FinishInto(out);
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  EXPECT_EQ(io::ReadAllRecords<std::uint64_t>(ctx.get(), out), values);
}

TEST(SortingWriterTest, EmptyFinishIntoFileWritesEmptyFile) {
  auto ctx = MakeMemTestContext();
  extsort::SortingWriter<std::uint64_t, U64Less> writer(ctx.get(), U64Less());
  const std::string out = ctx->NewTempPath("out");
  const auto info = writer.FinishInto(out);
  EXPECT_EQ(info.num_records, 0u);
  EXPECT_EQ(info.num_runs, 0u);
  EXPECT_TRUE(io::ReadAllRecords<std::uint64_t>(ctx.get(), out).empty());
}

// ---- sink building blocks --------------------------------------------
TEST(RecordSinkTest, CountingAndTee) {
  auto ctx = MakeMemTestContext();
  const std::string in = ctx->NewTempPath("in");
  io::WriteAllRecords<std::uint64_t>(ctx.get(), in, {5, 3, 3, 9, 1});
  extsort::CountingSink<std::uint64_t> counter;
  std::vector<std::uint64_t> seen;
  auto collect = extsort::MakeCallbackSink<std::uint64_t>(
      [&](std::uint64_t v) { seen.push_back(v); });
  auto tee = extsort::MakeTeeSink<std::uint64_t>(counter, collect);
  extsort::SortInto<std::uint64_t>(ctx.get(), in, tee, U64Less(),
                                   /*dedup=*/true);
  EXPECT_EQ(counter.count(), 4u);
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 3, 5, 9}));
}

TEST(RecordSinkTest, FileSinkRoundTrips) {
  // The suite's designated Posix round trip: the rest of the suite runs
  // on MemDevice scratch.
  auto ctx = MakeTestContext();
  const std::string out = ctx->NewTempPath("out");
  {
    extsort::FileSink<std::uint64_t> sink(ctx.get(), out);
    const std::uint64_t batch[3] = {7, 8, 9};
    sink.Append(1);
    sink.AppendBatch(batch, 3);
    sink.Finish();
    EXPECT_EQ(sink.count(), 4u);
  }
  EXPECT_EQ(io::ReadAllRecords<std::uint64_t>(ctx.get(), out),
            (std::vector<std::uint64_t>{1, 7, 8, 9}));
}

// ---- membership-split sink vs the pull form --------------------------
TEST(MembershipSplitSinkTest, PushMatchesPullSplit) {
  auto ctx = MakeMemTestContext();
  util::Rng rng(21);
  std::vector<graph::Edge> edges(4'000);
  for (auto& e : edges) {
    e.src = static_cast<graph::NodeId>(rng.Uniform(300));
    e.dst = static_cast<graph::NodeId>(rng.Uniform(300));
  }
  std::sort(edges.begin(), edges.end(), graph::EdgeBySrc());
  std::vector<graph::NodeId> cover;
  for (graph::NodeId v = 0; v < 300; v += 1 + rng.Uniform(4)) {
    cover.push_back(v);
  }
  const std::string edge_path = ctx->NewTempPath("edges");
  const std::string cover_path = ctx->NewTempPath("cover");
  io::WriteAllRecords(ctx.get(), edge_path, edges);
  io::WriteAllRecords(ctx.get(), cover_path, cover);

  std::vector<graph::Edge> pull_member, pull_removed;
  core::SplitByMembership(
      ctx.get(), edge_path, cover_path,
      [](const graph::Edge& e) { return e.src; },
      [&](const graph::Edge& e) { pull_member.push_back(e); },
      [&](const graph::Edge& e) { pull_removed.push_back(e); });

  std::vector<graph::Edge> push_member, push_removed;
  core::MembershipSplitSink split(
      ctx.get(), cover_path, [](const graph::Edge& e) { return e.src; },
      [&](const graph::Edge& e) { push_member.push_back(e); },
      [&](const graph::Edge& e) { push_removed.push_back(e); });
  for (const auto& e : edges) split.Append(e);

  EXPECT_EQ(push_member, pull_member);
  EXPECT_EQ(push_removed, pull_removed);
  EXPECT_EQ(push_member.size() + push_removed.size(), edges.size());
}

}  // namespace
}  // namespace extscc
