// Failure injection: corrupt inputs, absurd configurations, budget
// exhaustion, and injected device faults must surface as Status errors,
// CHECK aborts, or recovered-and-verified solves — never as silent
// wrong answers.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <memory>
#include <vector>

#include "baseline/dfs_scc.h"
#include "baseline/em_scc.h"
#include "core/ext_scc.h"
#include "gen/classic_graphs.h"
#include "graph/disk_graph.h"
#include "graph/graph_io.h"
#include "io/record_stream.h"
#include "io/storage.h"
#include "io/temp_file_manager.h"
#include "scc/semi_external_scc.h"
#include "test_util.h"
#include "util/random.h"

namespace extscc {
namespace {

using core::ExtSccOptions;
using graph::Edge;
using testing::MakeTestContext;

// A context over fault-injecting scratch devices (RAM-backed, so the
// chaos tests are tmpfs-independent), with geometry small enough that
// even tiny graphs spill real runs.
std::unique_ptr<io::IoContext> MakeFaultyContext(
    const io::FaultSpec& fault, std::size_t num_devices,
    std::size_t sort_threads = 0, std::size_t io_threads = 0,
    bool checksums = false,
    io::PlacementPolicy placement = io::PlacementPolicy::kRoundRobin) {
  io::IoContextOptions options;
  options.block_size = 256;
  options.memory_bytes = scc::SemiExternalScc::kBytesPerNode * 32;
  options.scratch_dirs.assign(num_devices, "unused-for-mem-backing");
  options.device_model.model = io::DeviceModel::kFaulty;
  options.device_model.fault = fault;
  options.device_model.fault.inner = io::DeviceModel::kMem;
  options.sort_threads = sort_threads;
  options.io_threads = io_threads;
  options.checksum_blocks = checksums;
  options.scratch_placement = placement;
  return std::make_unique<io::IoContext>(options);
}

// The same machine with clean (fault-free) RAM devices — the reference
// run the faulty solves must be byte-identical to.
std::unique_ptr<io::IoContext> MakeCleanMemContext(std::size_t num_devices) {
  io::IoContextOptions options;
  options.block_size = 256;
  options.memory_bytes = scc::SemiExternalScc::kBytesPerNode * 32;
  options.scratch_dirs.assign(num_devices, "unused-for-mem-backing");
  options.device_model.model = io::DeviceModel::kMem;
  return std::make_unique<io::IoContext>(options);
}

std::vector<graph::SccEntry> SolveOrDie(io::IoContext* ctx,
                                        const std::vector<Edge>& edges,
                                        const char* label) {
  const auto g = graph::MakeDiskGraph(ctx, edges);
  const std::string out = ctx->NewTempPath("labels");
  auto result = core::RunExtScc(ctx, g, out, ExtSccOptions::Optimized());
  EXPECT_TRUE(result.ok()) << label << ": " << result.status().ToString();
  if (!result.ok()) return {};
  testing::ExpectSccFileMatchesOracle(ctx, g, out, label);
  return io::ReadAllRecords<graph::SccEntry>(ctx, out);
}

// ---- Seeded device faults: transient EIO + torn transfers ------------

TEST(FaultInjectionTest, TransientFaultsRetryToByteIdenticalSolve) {
  const auto edges = gen::RandomDigraphEdges(150, 450, 17);
  auto clean = MakeCleanMemContext(1);
  const auto reference = SolveOrDie(clean.get(), edges, "clean reference");
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(clean->stats().read_retries + clean->stats().write_retries, 0u)
      << "fault-free runs must never take the retry path";

  // Compose with the threaded engines: retries live below the worker
  // rings, so overlapped sort/spill and device-parallel I/O must solve
  // through the same fault schedule.
  struct { std::size_t sort_threads, io_threads; } grid[] = {
      {0, 0}, {1, 0}, {0, 2}, {1, 2}};
  for (const auto& point : grid) {
    io::FaultSpec fault;
    fault.seed = 41;
    fault.read_fault_rate = 2e-3;
    fault.write_fault_rate = 2e-3;
    fault.short_rate = 1e-3;
    auto faulty = MakeFaultyContext(fault, 1, point.sort_threads,
                                    point.io_threads);
    const auto labels = SolveOrDie(faulty.get(), edges, "transient faults");
    EXPECT_EQ(labels.size(), reference.size());
    for (std::size_t i = 0; i < labels.size() && i < reference.size(); ++i) {
      ASSERT_EQ(labels[i].node, reference[i].node) << "at record " << i;
      ASSERT_EQ(labels[i].scc, reference[i].scc) << "at record " << i;
    }
    // The schedule is seeded and the graph spills: some op must have
    // faulted and been retried, or the test is vacuous.
    EXPECT_GT(faulty->stats().read_retries + faulty->stats().write_retries,
              0u);
    EXPECT_FALSE(faulty->has_io_error())
        << faulty->io_error().ToString()
        << " — transient faults must be absorbed by retries, not latched";
  }
}

// ---- Persistent single-device failure: quarantine + failover ---------

TEST(FaultInjectionTest, PersistentDeviceFailureFailsOverAndVerifies) {
  // Device 1 of 2 dies for writes (ENOSPC) at its second spill op;
  // reads of what it already holds still work. The solve must
  // quarantine it, re-place the lost run on the healthy device, and
  // finish with verified labels. tag=sortrun scopes the schedule to
  // spill writes — the failover seam this test exercises.
  io::FaultSpec fault;
  fault.seed = 7;
  fault.fail_writes_after = 1;
  fault.path_tag = "sortrun";
  fault.device_index = 1;
  auto ctx = MakeFaultyContext(fault, /*num_devices=*/2);
  const auto edges = gen::RandomDigraphEdges(150, 450, 19);
  const auto labels = SolveOrDie(ctx.get(), edges, "single dead device");
  ASSERT_FALSE(labels.empty());

  const auto devices = ctx->temp_files().devices();
  ASSERT_EQ(devices.size(), 2u);
  EXPECT_TRUE(ctx->temp_files().IsQuarantined(devices[1]))
      << "the persistently failing device must be quarantined";
  EXPECT_FALSE(ctx->temp_files().IsQuarantined(devices[0]));
  EXPECT_EQ(ctx->temp_files().num_available_devices(), 1u);
  EXPECT_FALSE(ctx->has_io_error())
      << ctx->io_error().ToString()
      << " — a recovered failover must absorb its latched error";

  // Byte-identity with the clean 2-device machine is NOT expected here
  // (placement legitimately shifts after the quarantine); the oracle
  // check above is the correctness bar.
}

// ---- Faults x striped placement --------------------------------------

TEST(FaultInjectionTest, StripedTransientFaultsRetryToByteIdenticalSolve) {
  // Striped scratch means every block op picks its member device; the
  // retry layer must charge and absorb faults per member, and the solve
  // must stay byte-identical to the clean reference.
  const auto edges = gen::RandomDigraphEdges(150, 450, 17);
  auto clean = MakeCleanMemContext(1);
  const auto reference = SolveOrDie(clean.get(), edges, "clean reference");
  ASSERT_FALSE(reference.empty());

  io::FaultSpec fault;
  fault.seed = 59;
  fault.read_fault_rate = 2e-3;
  fault.write_fault_rate = 2e-3;
  fault.short_rate = 1e-3;
  auto faulty =
      MakeFaultyContext(fault, /*num_devices=*/2, /*sort_threads=*/0,
                        /*io_threads=*/2, /*checksums=*/false,
                        io::PlacementPolicy::kStriped);
  const auto labels =
      SolveOrDie(faulty.get(), edges, "striped transient faults");
  ASSERT_EQ(labels.size(), reference.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    ASSERT_EQ(labels[i].node, reference[i].node) << "at record " << i;
    ASSERT_EQ(labels[i].scc, reference[i].scc) << "at record " << i;
  }
  EXPECT_GT(faulty->stats().read_retries + faulty->stats().write_retries, 0u);
  EXPECT_FALSE(faulty->has_io_error()) << faulty->io_error().ToString();
}

TEST(FaultInjectionTest, StripedPersistentMemberFailureQuarantinesMember) {
  // One member of every stripe dies persistently for spill writes. The
  // failover must treat each affected striped file as ONE lost file,
  // quarantine the dead MEMBER (not the composite), fall back to
  // round-robin placement on the survivor (stripes need >= 2 devices),
  // and finish with verified labels.
  io::FaultSpec fault;
  fault.seed = 7;
  fault.fail_writes_after = 1;
  fault.path_tag = "sortrun";
  fault.device_index = 1;
  auto ctx =
      MakeFaultyContext(fault, /*num_devices=*/2, /*sort_threads=*/0,
                        /*io_threads=*/0, /*checksums=*/false,
                        io::PlacementPolicy::kStriped);
  const auto edges = gen::RandomDigraphEdges(150, 450, 19);
  const auto labels = SolveOrDie(ctx.get(), edges, "striped dead member");
  ASSERT_FALSE(labels.empty());

  const auto devices = ctx->temp_files().devices();
  ASSERT_EQ(devices.size(), 2u);
  EXPECT_TRUE(ctx->temp_files().IsQuarantined(devices[1]))
      << "the failing stripe member must be quarantined";
  EXPECT_FALSE(ctx->temp_files().IsQuarantined(devices[0]));
  EXPECT_EQ(ctx->temp_files().num_available_devices(), 1u);
  EXPECT_FALSE(ctx->has_io_error())
      << ctx->io_error().ToString()
      << " — a recovered striped failover must absorb its latched error";
}

// ---- Silent corruption: checksums turn bit flips into kCorruption ----

TEST(FaultInjectionTest, BitFlipsYieldCorruptionNeverWrongAnswers) {
  io::FaultSpec fault;
  fault.seed = 23;
  fault.corrupt_rate = 5e-3;  // dense enough that some read gets hit
  auto ctx = MakeFaultyContext(fault, 1, /*sort_threads=*/0,
                               /*io_threads=*/0, /*checksums=*/true);
  const auto edges = gen::RandomDigraphEdges(150, 450, 29);
  const auto g = graph::MakeDiskGraph(ctx.get(), edges);
  const std::string out = ctx->NewTempPath("labels");
  auto result =
      core::RunExtScc(ctx.get(), g, out, ExtSccOptions::Optimized());
  if (result.ok()) {
    // Every flipped block happened to dodge this run's reads — legal,
    // but then the answer must be right.
    testing::ExpectSccFileMatchesOracle(ctx.get(), g, out, "corrupt-lucky");
  } else {
    EXPECT_EQ(result.status().code(), util::StatusCode::kCorruption)
        << result.status().ToString();
  }
}

TEST(FaultInjectionTest, ChecksummedCleanSolveVerifies) {
  // Checksums change the physical block layout; the logical results
  // must not notice. (Fault-free faulty device = plain pass-through.)
  io::FaultSpec fault;
  fault.seed = 3;
  auto ctx = MakeFaultyContext(fault, 1, /*sort_threads=*/0,
                               /*io_threads=*/2, /*checksums=*/true);
  const auto edges = gen::RandomDigraphEdges(150, 450, 17);
  const auto labels = SolveOrDie(ctx.get(), edges, "checksums on");
  EXPECT_FALSE(labels.empty());
  EXPECT_EQ(ctx->stats().read_retries + ctx->stats().write_retries, 0u);
}

// ---- Unit seams of the fault-tolerance machinery ---------------------

TEST(FaultInjectionTest, QuarantinePlacementAvoidsDeadDevice) {
  auto ctx = MakeCleanMemContext(3);
  io::TempFileManager& temp = ctx->temp_files();
  const auto devices = temp.devices();
  ASSERT_EQ(devices.size(), 3u);
  EXPECT_EQ(temp.num_available_devices(), 3u);
  temp.Quarantine(devices[1]);
  EXPECT_TRUE(temp.IsQuarantined(devices[1]));
  EXPECT_EQ(temp.num_available_devices(), 2u);
  for (int i = 0; i < 12; ++i) {
    const io::ScratchFile file = temp.NewFile("probe", io::Placement());
    EXPECT_NE(file.device, devices[1])
        << "placement handed a file to the quarantined device";
  }
  // Quarantining everything must degrade to "any device" rather than
  // divide-by-zero: the underlying I/O failure is the real story.
  temp.Quarantine(devices[0]);
  temp.Quarantine(devices[2]);
  EXPECT_EQ(temp.num_available_devices(), 3u);
  EXPECT_NE(temp.NewFile("probe", io::Placement()).device, nullptr);
}

TEST(FaultInjectionTest, IoErrorLatchIsFirstWinsAndAbsorbable) {
  auto ctx = MakeCleanMemContext(1);
  EXPECT_FALSE(ctx->has_io_error());
  const auto first = util::Status::IoError("first failure", EIO);
  const auto second = util::Status::IoError("second failure", ENOSPC);
  ctx->RecordIoError(first);
  ctx->RecordIoError(second);  // latched error must not change
  ASSERT_TRUE(ctx->has_io_error());
  EXPECT_EQ(ctx->io_error().message(), first.message());
  // Absorbing a DIFFERENT error leaves the latch alone...
  EXPECT_FALSE(ctx->AbsorbIoError(second));
  EXPECT_TRUE(ctx->has_io_error());
  // ...absorbing the recovered (first) one clears it.
  EXPECT_TRUE(ctx->AbsorbIoError(first));
  EXPECT_FALSE(ctx->has_io_error());
}

TEST(FaultInjectionTest, RetryableErrnoClassification) {
  using util::Status;
  EXPECT_TRUE(io::IsRetryableIoError(Status::IoError("eio", EIO)));
  EXPECT_TRUE(io::IsRetryableIoError(Status::IoError("eintr", EINTR)));
  EXPECT_TRUE(io::IsRetryableIoError(Status::IoError("eagain", EAGAIN)));
  EXPECT_TRUE(io::IsRetryableIoError(Status::IoError("etimedout", ETIMEDOUT)));
  EXPECT_FALSE(io::IsRetryableIoError(Status::IoError("enospc", ENOSPC)));
  EXPECT_FALSE(io::IsRetryableIoError(Status::IoError("enoent", ENOENT)));
  EXPECT_FALSE(io::IsRetryableIoError(Status::IoError("no errno")));
  EXPECT_FALSE(io::IsRetryableIoError(Status::Corruption("bad checksum")));
  EXPECT_FALSE(io::IsRetryableIoError(Status::Ok()));
}

TEST(FailureInjectionTest, TruncatedRecordFileAborts) {
  auto ctx = MakeTestContext();
  // A user-facing path on the base device, NOT a scratch path: under
  // the mem/striped test matrices a scratch path is a virtual name an
  // ofstream cannot create.
  const std::string path = ::testing::TempDir() + "/extscc_truncated.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "abc";  // 3 bytes: not a whole Edge record
  }
  EXPECT_DEATH(io::NumRecordsInFile<Edge>(ctx.get(), path),
               "whole number of records");
}

TEST(FailureInjectionTest, MaxIterationsSafetyValve) {
  auto ctx = MakeTestContext(/*memory_bytes=*/
                             scc::SemiExternalScc::kBytesPerNode * 16,
                             /*block_size=*/128);
  // A 200-cycle under a 16-node budget needs many levels; capping the
  // iteration count must produce FailedPrecondition, not a wrong result.
  const auto g = graph::MakeDiskGraph(ctx.get(), gen::CycleEdges(200));
  ExtSccOptions options = ExtSccOptions::Basic();
  options.max_iterations = 2;
  const std::string out = ctx->NewTempPath("out");
  auto result = core::RunExtScc(ctx.get(), g, out, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(FailureInjectionTest, IoBudgetDuringEachPhase) {
  // Sweep the budget upward: every prefix-censoring must fail cleanly,
  // and once the budget is high enough the run must succeed and verify.
  const auto edges = gen::RandomDigraphEdges(120, 360, 61);
  bool seen_failure = false;
  bool seen_success = false;
  for (const std::uint64_t budget :
       {200ull, 2'000ull, 20'000ull, 0ull /* unlimited */}) {
    auto ctx = MakeTestContext(/*memory_bytes=*/
                               scc::SemiExternalScc::kBytesPerNode * 32,
                               /*block_size=*/256);
    const auto g = graph::MakeDiskGraph(ctx.get(), edges);
    if (budget > 0) ctx->set_io_budget(budget);
    const std::string out = ctx->NewTempPath("out");
    auto result =
        core::RunExtScc(ctx.get(), g, out, ExtSccOptions::Optimized());
    if (result.ok()) {
      seen_success = true;
      testing::ExpectSccFileMatchesOracle(ctx.get(), g, out, "budget-sweep");
    } else {
      seen_failure = true;
      EXPECT_EQ(result.status().code(),
                util::StatusCode::kResourceExhausted);
    }
  }
  EXPECT_TRUE(seen_failure) << "the tightest budget must censor";
  EXPECT_TRUE(seen_success) << "the unlimited budget must succeed";
}

TEST(FailureInjectionTest, EmSccBudgetCensoring) {
  auto ctx = MakeTestContext(/*memory_bytes=*/4 << 10, /*block_size=*/1024);
  // Cyclic-rich workload EM-SCC can normally solve...
  const auto g = graph::MakeDiskGraph(ctx.get(), gen::CycleChainEdges(60, 6));
  ctx->set_io_budget(ctx->stats().total_ios() + 50);
  const std::string out = ctx->NewTempPath("out");
  auto result = baseline::RunEmScc(ctx.get(), g, out);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kResourceExhausted);
}

TEST(FailureInjectionTest, LoadRejectsHugeNodeIds) {
  auto ctx = MakeTestContext();
  // Base-device path for the same reason as TruncatedRecordFileAborts.
  const std::string path = ::testing::TempDir() + "/extscc_huge.txt";
  {
    std::ofstream out(path);
    out << "1 99999999999\n";  // exceeds 32-bit node id space
  }
  auto result = graph::LoadTextEdgeList(ctx.get(), path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(FailureInjectionTest, SolverOutputsAreReproducibleAfterFailure) {
  // A censored run must not poison a later successful run in the same
  // context (scratch files are independent; the budget flag is reset).
  auto ctx = MakeTestContext(/*memory_bytes=*/
                             scc::SemiExternalScc::kBytesPerNode * 32,
                             /*block_size=*/256);
  const auto g = graph::MakeDiskGraph(
      ctx.get(), gen::RandomDigraphEdges(100, 300, 63));
  ctx->set_io_budget(ctx->stats().total_ios() + 100);
  const std::string out1 = ctx->NewTempPath("out1");
  ASSERT_FALSE(
      core::RunExtScc(ctx.get(), g, out1, ExtSccOptions::Basic()).ok());
  // Lift the budget and retry.
  ctx->set_io_budget(0);
  ctx->reset_io_budget_flag();
  const std::string out2 = ctx->NewTempPath("out2");
  auto retry = core::RunExtScc(ctx.get(), g, out2, ExtSccOptions::Basic());
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  testing::ExpectSccFileMatchesOracle(ctx.get(), g, out2, "retry");
}

}  // namespace
}  // namespace extscc
