// Failure injection: corrupt inputs, absurd configurations, and budget
// exhaustion must surface as Status errors or CHECK aborts — never as
// silent wrong answers.
#include <gtest/gtest.h>

#include <fstream>

#include "baseline/dfs_scc.h"
#include "baseline/em_scc.h"
#include "core/ext_scc.h"
#include "gen/classic_graphs.h"
#include "graph/disk_graph.h"
#include "graph/graph_io.h"
#include "io/record_stream.h"
#include "scc/semi_external_scc.h"
#include "test_util.h"
#include "util/random.h"

namespace extscc {
namespace {

using core::ExtSccOptions;
using graph::Edge;
using testing::MakeTestContext;

TEST(FailureInjectionTest, TruncatedRecordFileAborts) {
  auto ctx = MakeTestContext();
  const std::string path = ctx->NewTempPath("truncated");
  {
    std::ofstream out(path, std::ios::binary);
    out << "abc";  // 3 bytes: not a whole Edge record
  }
  EXPECT_DEATH(io::NumRecordsInFile<Edge>(ctx.get(), path),
               "whole number of records");
}

TEST(FailureInjectionTest, MaxIterationsSafetyValve) {
  auto ctx = MakeTestContext(/*memory_bytes=*/
                             scc::SemiExternalScc::kBytesPerNode * 16,
                             /*block_size=*/128);
  // A 200-cycle under a 16-node budget needs many levels; capping the
  // iteration count must produce FailedPrecondition, not a wrong result.
  const auto g = graph::MakeDiskGraph(ctx.get(), gen::CycleEdges(200));
  ExtSccOptions options = ExtSccOptions::Basic();
  options.max_iterations = 2;
  const std::string out = ctx->NewTempPath("out");
  auto result = core::RunExtScc(ctx.get(), g, out, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(FailureInjectionTest, IoBudgetDuringEachPhase) {
  // Sweep the budget upward: every prefix-censoring must fail cleanly,
  // and once the budget is high enough the run must succeed and verify.
  const auto edges = gen::RandomDigraphEdges(120, 360, 61);
  bool seen_failure = false;
  bool seen_success = false;
  for (const std::uint64_t budget :
       {200ull, 2'000ull, 20'000ull, 0ull /* unlimited */}) {
    auto ctx = MakeTestContext(/*memory_bytes=*/
                               scc::SemiExternalScc::kBytesPerNode * 32,
                               /*block_size=*/256);
    const auto g = graph::MakeDiskGraph(ctx.get(), edges);
    if (budget > 0) ctx->set_io_budget(budget);
    const std::string out = ctx->NewTempPath("out");
    auto result =
        core::RunExtScc(ctx.get(), g, out, ExtSccOptions::Optimized());
    if (result.ok()) {
      seen_success = true;
      testing::ExpectSccFileMatchesOracle(ctx.get(), g, out, "budget-sweep");
    } else {
      seen_failure = true;
      EXPECT_EQ(result.status().code(),
                util::StatusCode::kResourceExhausted);
    }
  }
  EXPECT_TRUE(seen_failure) << "the tightest budget must censor";
  EXPECT_TRUE(seen_success) << "the unlimited budget must succeed";
}

TEST(FailureInjectionTest, EmSccBudgetCensoring) {
  auto ctx = MakeTestContext(/*memory_bytes=*/4 << 10, /*block_size=*/1024);
  // Cyclic-rich workload EM-SCC can normally solve...
  const auto g = graph::MakeDiskGraph(ctx.get(), gen::CycleChainEdges(60, 6));
  ctx->set_io_budget(ctx->stats().total_ios() + 50);
  const std::string out = ctx->NewTempPath("out");
  auto result = baseline::RunEmScc(ctx.get(), g, out);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kResourceExhausted);
}

TEST(FailureInjectionTest, LoadRejectsHugeNodeIds) {
  auto ctx = MakeTestContext();
  const std::string path = ctx->NewTempPath("huge.txt");
  {
    std::ofstream out(path);
    out << "1 99999999999\n";  // exceeds 32-bit node id space
  }
  auto result = graph::LoadTextEdgeList(ctx.get(), path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(FailureInjectionTest, SolverOutputsAreReproducibleAfterFailure) {
  // A censored run must not poison a later successful run in the same
  // context (scratch files are independent; the budget flag is reset).
  auto ctx = MakeTestContext(/*memory_bytes=*/
                             scc::SemiExternalScc::kBytesPerNode * 32,
                             /*block_size=*/256);
  const auto g = graph::MakeDiskGraph(
      ctx.get(), gen::RandomDigraphEdges(100, 300, 63));
  ctx->set_io_budget(ctx->stats().total_ios() + 100);
  const std::string out1 = ctx->NewTempPath("out1");
  ASSERT_FALSE(
      core::RunExtScc(ctx.get(), g, out1, ExtSccOptions::Basic()).ok());
  // Lift the budget and retry.
  ctx->set_io_budget(0);
  ctx->reset_io_budget_flag();
  const std::string out2 = ctx->NewTempPath("out2");
  auto retry = core::RunExtScc(ctx.get(), g, out2, ExtSccOptions::Basic());
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  testing::ExpectSccFileMatchesOracle(ctx.get(), g, out2, "retry");
}

}  // namespace
}  // namespace extscc
