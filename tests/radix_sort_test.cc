// Oracle tests for the LSD radix run-formation sorter (radix_sort.h)
// and the normalized-key vocabulary (record_traits.h): across every
// keyed record type the radix path must agree with std::stable_sort
// byte for byte — including arrival order on duplicate keys — both in
// memory and through full external sorts with block-straddling record
// sizes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "extsort/external_sorter.h"
#include "extsort/radix_sort.h"
#include "extsort/record_traits.h"
#include "graph/graph_types.h"
#include "io/record_stream.h"
#include "test_util.h"
#include "util/random.h"

namespace extscc {
namespace {

using graph::DegreeEntry;
using graph::Edge;
using graph::NodeId;
using graph::SccEntry;
using testing::MakeMemTestContext;
using testing::MakeTestContext;

struct U64Less {
  static std::uint64_t KeyOf(std::uint64_t v) { return v; }
  bool operator()(std::uint64_t a, std::uint64_t b) const { return a < b; }
};

// Keyless twin of EdgeBySrc: same order, no KeyOf — pins the
// std::stable_sort fallback for radix-vs-fallback comparisons.
struct EdgeBySrcNoKey {
  bool operator()(const Edge& a, const Edge& b) const {
    return graph::EdgeBySrc::KeyOf(a) < graph::EdgeBySrc::KeyOf(b);
  }
};

static_assert(extsort::RadixSortable<graph::EdgeBySrc, Edge>);
static_assert(extsort::RadixSortable<graph::EdgeByDst, Edge>);
static_assert(extsort::RadixSortable<graph::SccEntryByNode, SccEntry>);
static_assert(extsort::RadixSortable<graph::DegreeEntryByNode, DegreeEntry>);
static_assert(extsort::RadixSortable<graph::NodeIdLess, NodeId>);
static_assert(extsort::RadixSortable<U64Less, std::uint64_t>);
static_assert(!extsort::RadixSortable<EdgeBySrcNoKey, Edge>);

// Byte-compare two record vectors (EXPECT with index diagnostics).
template <typename T>
void ExpectBytesEqual(const std::vector<T>& got, const std::vector<T>& want,
                      const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(std::memcmp(&got[i], &want[i], sizeof(T)), 0)
        << label << ": first byte-difference at record " << i;
  }
}

// In-memory oracle: LsdRadixSort vs std::stable_sort on the same draw.
template <typename T, typename Less, typename Gen>
void RunInMemoryOracle(std::size_t n, Gen gen, const char* label) {
  std::vector<T> radixed(n);
  for (auto& r : radixed) r = gen();
  std::vector<T> expected = radixed;
  std::vector<T> scratch;
  extsort::LsdRadixSort<T, Less>(radixed.data(), radixed.size(), scratch);
  std::stable_sort(expected.begin(), expected.end(), Less{});
  ExpectBytesEqual(radixed, expected, label);
}

TEST(RadixSortTest, MatchesStableSortAcrossKeyedTypes) {
  util::Rng rng(101);
  // Sizes straddle the kRadixMinRecords cutoff and the skip-pass
  // regimes (narrow vs wide key ranges).
  for (const std::size_t n : {0u, 1u, 2u, 100u, 500u, 20'000u}) {
    for (const std::uint32_t range : {2u, 300u, 1u << 20, 0xffffffffu}) {
      RunInMemoryOracle<Edge, graph::EdgeBySrc>(
          n,
          [&] {
            return Edge{static_cast<NodeId>(rng.Uniform(range)),
                        static_cast<NodeId>(rng.Uniform(range))};
          },
          "Edge/by-src");
      RunInMemoryOracle<Edge, graph::EdgeByDst>(
          n,
          [&] {
            return Edge{static_cast<NodeId>(rng.Uniform(range)),
                        static_cast<NodeId>(rng.Uniform(range))};
          },
          "Edge/by-dst");
      RunInMemoryOracle<SccEntry, graph::SccEntryByNode>(
          n,
          [&] {
            return SccEntry{static_cast<NodeId>(rng.Uniform(range)),
                            static_cast<graph::SccId>(rng.Uniform(range))};
          },
          "SccEntry/by-node");
      RunInMemoryOracle<NodeId, graph::NodeIdLess>(
          n, [&] { return static_cast<NodeId>(rng.Uniform(range)); },
          "NodeId");
      RunInMemoryOracle<std::uint64_t, U64Less>(
          n, [&] { return rng.Uniform(range) * 0x9e3779b97f4a7c15ull; },
          "u64");
    }
  }
}

TEST(RadixSortTest, StableOnDuplicateKeys) {
  // DegreeEntry orders by node only; the degree payload tags arrival
  // order. After the radix sort, each node group must keep its payloads
  // in insertion order — the defining property of a stable sort.
  util::Rng rng(7);
  std::vector<DegreeEntry> entries(50'000);
  for (std::uint32_t i = 0; i < entries.size(); ++i) {
    entries[i].node = static_cast<NodeId>(rng.Uniform(64));  // heavy dups
    entries[i].deg_in = i;  // arrival stamp
    entries[i].deg_out = i ^ 0xa5a5a5a5u;
  }
  std::vector<DegreeEntry> expected = entries;
  std::vector<DegreeEntry> scratch;
  extsort::LsdRadixSort<DegreeEntry, graph::DegreeEntryByNode>(
      entries.data(), entries.size(), scratch);
  std::stable_sort(expected.begin(), expected.end(),
                   graph::DegreeEntryByNode{});
  ExpectBytesEqual(entries, expected, "DegreeEntry stability");
  // Spot-check the invariant directly, not just against the oracle.
  for (std::size_t i = 1; i < entries.size(); ++i) {
    ASSERT_LE(entries[i - 1].node, entries[i].node);
    if (entries[i - 1].node == entries[i].node) {
      ASSERT_LT(entries[i - 1].deg_in, entries[i].deg_in)
          << "arrival order broken within node group at " << i;
    }
  }
}

TEST(RadixSortTest, AllEqualAndPresortedInputs) {
  std::vector<std::uint64_t> scratch;
  std::vector<std::uint64_t> all_equal(10'000, 42);
  extsort::LsdRadixSort<std::uint64_t, U64Less>(all_equal.data(),
                                                all_equal.size(), scratch);
  EXPECT_TRUE(std::all_of(all_equal.begin(), all_equal.end(),
                          [](std::uint64_t v) { return v == 42; }));

  std::vector<std::uint64_t> sorted(10'000);
  for (std::size_t i = 0; i < sorted.size(); ++i) sorted[i] = i * 3;
  auto expected = sorted;
  extsort::LsdRadixSort<std::uint64_t, U64Less>(sorted.data(), sorted.size(),
                                                scratch);
  EXPECT_EQ(sorted, expected);
}

TEST(RadixSortTest, HighBytesOnlyKeys) {
  // Keys that differ only in the top byte exercise the late passes
  // after every early pass was skipped as trivial.
  util::Rng rng(13);
  std::vector<std::uint64_t> values(5'000);
  for (auto& v : values) v = rng.Uniform(256) << 56;
  auto expected = values;
  std::vector<std::uint64_t> scratch;
  extsort::LsdRadixSort<std::uint64_t, U64Less>(values.data(), values.size(),
                                                scratch);
  std::stable_sort(expected.begin(), expected.end());
  EXPECT_EQ(values, expected);
}

// 12-byte keyed record: never divides a 1024-byte block evenly, so runs
// and merges straddle every block boundary; the key covers only the
// leading field, payloads tag arrival order.
struct Wide {
  std::uint32_t key = 0;
  std::uint32_t stamp = 0;
  std::uint32_t check = 0;
};
static_assert(sizeof(Wide) == 12);

struct WideByKey {
  static std::uint32_t KeyOf(const Wide& w) { return w.key; }
  bool operator()(const Wide& a, const Wide& b) const {
    return KeyOf(a) < KeyOf(b);
  }
};

TEST(RadixSortTest, BlockStraddlingRecordsThroughExternalSort) {
  // Full external sort of radix-keyed 12-byte records. The merge
  // breaks key ties in arbitrary run order by design (see the
  // external_sorter.h header), so the oracle here is key order +
  // payload integrity + multiset equality — global stability is an
  // in-memory run-formation property, asserted by the tests above.
  // The suite's designated Posix round trip: the rest of the suite runs
  // on MemDevice scratch.
  auto ctx = MakeTestContext(/*memory_bytes=*/4 << 10, /*block_size=*/1024);
  util::Rng rng(19);
  std::vector<Wide> values(30'000);
  for (std::uint32_t i = 0; i < values.size(); ++i) {
    values[i].key = static_cast<std::uint32_t>(rng.Uniform(500));  // dups
    values[i].stamp = i;
    values[i].check = values[i].key ^ (values[i].stamp * 2654435761u);
  }
  const std::string in = ctx->NewTempPath("in");
  const std::string out = ctx->NewTempPath("out");
  io::WriteAllRecords(ctx.get(), in, values);
  const auto info =
      extsort::SortFile<Wide, WideByKey>(ctx.get(), in, out, WideByKey());
  EXPECT_GT(info.num_runs, 1u);
  auto result = io::ReadAllRecords<Wide>(ctx.get(), out);
  ASSERT_EQ(result.size(), values.size());
  for (std::size_t i = 0; i < result.size(); ++i) {
    if (i > 0) ASSERT_LE(result[i - 1].key, result[i].key) << i;
    // Payloads travel intact with their keys across block boundaries.
    ASSERT_EQ(result[i].check, result[i].key ^ (result[i].stamp *
                                                2654435761u))
        << i;
  }
  auto by_stamp = [](const Wide& a, const Wide& b) {
    return a.stamp < b.stamp;
  };
  std::sort(result.begin(), result.end(), by_stamp);
  ExpectBytesEqual(result, values, "Wide permutation");
}

// Randomized end-to-end oracle: the full external sort with a keyed
// comparator must produce the byte-identical file a keyless (pure
// std::stable_sort) twin produces, across random geometries, with and
// without dedup.
TEST(RadixSortTest, RandomizedExternalSortKeyedVsKeylessOracle) {
  util::Rng rng(2027);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t block = 512u << rng.Uniform(3);
    const std::uint64_t memory = (2 + rng.Uniform(30)) * block;
    const std::size_t count = 500 + rng.Uniform(30'000);
    const std::uint32_t range = 1 + static_cast<std::uint32_t>(
                                        rng.Uniform(1u << 14));
    const bool dedup = rng.Uniform(2) == 1;
    auto ctx = MakeMemTestContext(memory, block);
    std::vector<Edge> edges(count);
    for (auto& e : edges) {
      e.src = static_cast<NodeId>(rng.Uniform(range));
      e.dst = static_cast<NodeId>(rng.Uniform(range));
    }
    const std::string in = ctx->NewTempPath("in");
    io::WriteAllRecords(ctx.get(), in, edges);
    const std::string keyed = ctx->NewTempPath("keyed");
    const std::string keyless = ctx->NewTempPath("keyless");
    extsort::SortFile<Edge, graph::EdgeBySrc>(ctx.get(), in, keyed,
                                              graph::EdgeBySrc(), dedup);
    extsort::SortFile<Edge, EdgeBySrcNoKey>(ctx.get(), in, keyless,
                                            EdgeBySrcNoKey(), dedup);
    ExpectBytesEqual(io::ReadAllRecords<Edge>(ctx.get(), keyed),
                     io::ReadAllRecords<Edge>(ctx.get(), keyless),
                     "keyed vs keyless external sort");
  }
}

}  // namespace
}  // namespace extscc
