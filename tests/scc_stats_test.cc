#include "app/scc_stats.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/ext_scc.h"
#include "gen/classic_graphs.h"
#include "gen/synthetic_generator.h"
#include "graph/disk_graph.h"
#include "io/record_stream.h"
#include "test_util.h"

namespace extscc {
namespace {

using app::ComputeSccStats;
using app::SccStats;
using graph::SccEntry;
using testing::MakeTestContext;

SccStats StatsOf(io::IoContext* ctx, const std::vector<SccEntry>& entries,
                 std::uint32_t top_k = 5) {
  const std::string path = ctx->NewTempPath("labels");
  io::WriteAllRecords(ctx, path, entries);
  auto result = ComputeSccStats(ctx, path, top_k);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value();
}

TEST(SccStatsTest, EmptyFile) {
  auto ctx = MakeTestContext();
  const auto stats = StatsOf(ctx.get(), {});
  EXPECT_EQ(stats.num_nodes, 0u);
  EXPECT_EQ(stats.num_components, 0u);
  EXPECT_TRUE(stats.histogram.empty());
}

TEST(SccStatsTest, CountsComponentsAndSingletons) {
  auto ctx = MakeTestContext();
  // Component 0: 3 nodes; component 1: 1 node; component 2: 2 nodes.
  const auto stats = StatsOf(
      ctx.get(),
      {{10, 0}, {11, 0}, {12, 0}, {20, 1}, {30, 2}, {31, 2}});
  EXPECT_EQ(stats.num_nodes, 6u);
  EXPECT_EQ(stats.num_components, 3u);
  EXPECT_EQ(stats.num_singletons, 1u);
  EXPECT_EQ(stats.largest_size, 3u);
  EXPECT_EQ(stats.largest_scc, 0u);
  EXPECT_EQ(stats.top_sizes, (std::vector<std::uint64_t>{3, 2, 1}));
}

TEST(SccStatsTest, HistogramBucketsArePowersOfTwo) {
  auto ctx = MakeTestContext();
  // Sizes 1, 2, 5: buckets [1,1], [2,3], [4,7].
  std::vector<SccEntry> entries{{1, 0}};
  for (graph::NodeId n = 10; n < 12; ++n) entries.push_back({n, 1});
  for (graph::NodeId n = 20; n < 25; ++n) entries.push_back({n, 2});
  const auto stats = StatsOf(ctx.get(), entries);
  ASSERT_EQ(stats.histogram.size(), 3u);
  EXPECT_EQ(stats.histogram[0].lo, 1u);
  EXPECT_EQ(stats.histogram[0].hi, 1u);
  EXPECT_EQ(stats.histogram[0].num_components, 1u);
  EXPECT_EQ(stats.histogram[1].lo, 2u);
  EXPECT_EQ(stats.histogram[1].hi, 3u);
  EXPECT_EQ(stats.histogram[1].num_components, 1u);
  EXPECT_EQ(stats.histogram[2].lo, 4u);
  EXPECT_EQ(stats.histogram[2].hi, 7u);
  EXPECT_EQ(stats.histogram[2].num_nodes, 5u);
}

TEST(SccStatsTest, TopKBounded) {
  auto ctx = MakeTestContext();
  std::vector<SccEntry> entries;
  graph::NodeId next = 0;
  for (graph::SccId c = 0; c < 10; ++c) {
    for (graph::SccId i = 0; i <= c; ++i) entries.push_back({next++, c});
  }
  const auto stats = StatsOf(ctx.get(), entries, /*top_k=*/3);
  EXPECT_EQ(stats.top_sizes, (std::vector<std::uint64_t>{10, 9, 8}));
}

TEST(SccStatsTest, UnsortedInputAccepted) {
  auto ctx = MakeTestContext();
  // Deliberately interleaved labels — the module sorts internally.
  const auto stats = StatsOf(
      ctx.get(), {{5, 1}, {1, 0}, {6, 1}, {2, 0}, {7, 1}});
  EXPECT_EQ(stats.num_components, 2u);
  EXPECT_EQ(stats.largest_size, 3u);
}

TEST(SccStatsTest, ToStringMentionsKeyNumbers) {
  auto ctx = MakeTestContext();
  const auto stats =
      StatsOf(ctx.get(), {{1, 0}, {2, 0}, {3, 1}});
  const std::string s = stats.ToString();
  EXPECT_NE(s.find("2 SCCs"), std::string::npos) << s;
  EXPECT_NE(s.find("3 nodes"), std::string::npos) << s;
}

TEST(SccStatsTest, AgreesWithExtSccOnPlantedStructure) {
  auto ctx = MakeTestContext(/*memory_bytes=*/8 << 20);
  gen::SyntheticParams params;
  params.num_nodes = 3000;
  params.avg_degree = 1.0;  // sparse filler so planted SCCs dominate
  params.sccs = {{1, 200}, {4, 50}};
  params.seed = 23;
  const auto g = gen::GenerateSynthetic(ctx.get(), params);
  const std::string scc_path = ctx->NewTempPath("scc");
  ASSERT_TRUE(core::RunExtScc(ctx.get(), g, scc_path,
                              core::ExtSccOptions::Optimized())
                  .ok());
  auto result = ComputeSccStats(ctx.get(), scc_path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_nodes, g.num_nodes);
  EXPECT_GE(result.value().largest_size, 200u)
      << "the planted massive SCC must surface as the largest";
}

}  // namespace
}  // namespace extscc
