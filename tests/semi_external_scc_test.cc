#include <gtest/gtest.h>

#include <vector>

#include "gen/classic_graphs.h"
#include "graph/disk_graph.h"
#include "io/record_stream.h"
#include "scc/semi_external_scc.h"
#include "scc/scc_verify.h"
#include "test_util.h"

namespace extscc {
namespace {

using graph::Edge;
using scc::SemiExternalScc;
using testing::MakeTestContext;

// Runs Semi-SCC and verifies against the oracle.
void RunAndVerify(const std::vector<Edge>& edges,
                  const std::vector<graph::NodeId>& extra_nodes = {}) {
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), edges, extra_nodes);
  const std::string out = ctx->NewTempPath("scc");
  graph::SccId next = 0;
  const auto stats = SemiExternalScc::Run(ctx.get(), g, out, &next);
  EXPECT_EQ(stats.num_sccs, next);
  testing::ExpectSccFileMatchesOracle(ctx.get(), g, out, "Semi-SCC");
}

TEST(SemiExternalSccTest, EmptyGraph) {
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), {});
  const std::string out = ctx->NewTempPath("scc");
  graph::SccId next = 0;
  const auto stats = SemiExternalScc::Run(ctx.get(), g, out, &next);
  EXPECT_EQ(stats.num_sccs, 0u);
  EXPECT_EQ(io::NumRecordsInFile<graph::SccEntry>(ctx.get(), out), 0u);
}

TEST(SemiExternalSccTest, IsolatedNodesOnly) {
  RunAndVerify({}, {1, 5, 9});
}

TEST(SemiExternalSccTest, Fig1) { RunAndVerify(gen::Fig1Edges()); }

TEST(SemiExternalSccTest, PathIsAllSingletonsViaTrim) {
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), gen::PathEdges(50));
  const std::string out = ctx->NewTempPath("scc");
  graph::SccId next = 0;
  const auto stats = SemiExternalScc::Run(ctx.get(), g, out, &next);
  EXPECT_EQ(stats.num_sccs, 50u);
  EXPECT_EQ(stats.trimmed, 50u) << "a path dies entirely by trimming";
  EXPECT_EQ(stats.rounds, 0u);
}

TEST(SemiExternalSccTest, CycleIsOneScc) {
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), gen::CycleEdges(64));
  const std::string out = ctx->NewTempPath("scc");
  graph::SccId next = 0;
  const auto stats = SemiExternalScc::Run(ctx.get(), g, out, &next);
  EXPECT_EQ(stats.num_sccs, 1u);
  EXPECT_GE(stats.rounds, 1u);
  testing::ExpectSccFileMatchesOracle(ctx.get(), g, out, "cycle");
}

TEST(SemiExternalSccTest, SelfLoopsAndParallelEdges) {
  RunAndVerify({{1, 1}, {2, 3}, {3, 2}, {2, 3}, {4, 4}, {4, 5}});
}

TEST(SemiExternalSccTest, CycleChains) {
  RunAndVerify(gen::CycleChainEdges(6, 5));
}

TEST(SemiExternalSccTest, LabelsStartAtProvidedCounter) {
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), gen::CycleEdges(3));
  const std::string out = ctx->NewTempPath("scc");
  graph::SccId next = 41;
  SemiExternalScc::Run(ctx.get(), g, out, &next);
  EXPECT_EQ(next, 42u);
  const auto entries = io::ReadAllRecords<graph::SccEntry>(ctx.get(), out);
  for (const auto& e : entries) EXPECT_EQ(e.scc, 41u);
}

TEST(SemiExternalSccTest, OutputSortedByNode) {
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(
      ctx.get(), gen::RandomDigraphEdges(200, 600, 3));
  const std::string out = ctx->NewTempPath("scc");
  graph::SccId next = 0;
  SemiExternalScc::Run(ctx.get(), g, out, &next);
  const auto entries = io::ReadAllRecords<graph::SccEntry>(ctx.get(), out);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].node, entries[i].node);
  }
}

TEST(SemiExternalSccTest, FitsReflectsBudget) {
  io::MemoryBudget small(SemiExternalScc::kBytesPerNode * 10);
  EXPECT_TRUE(SemiExternalScc::Fits(10, small));
  EXPECT_FALSE(SemiExternalScc::Fits(11, small));
}

TEST(SemiExternalSccDeathTest, RefusesOverBudgetNodeSets) {
  auto ctx = MakeTestContext(/*memory_bytes=*/16 * 1024, /*block_size=*/4096);
  // 16 KB budget / 16 B per node = 1024 nodes max; build 2000.
  const auto g = graph::MakeDiskGraph(ctx.get(), gen::CycleEdges(2000));
  const std::string out = ctx->NewTempPath("scc");
  graph::SccId next = 0;
  EXPECT_DEATH(SemiExternalScc::Run(ctx.get(), g, out, &next),
               "contraction phase");
}

// Property sweep across random graphs.
class SemiSccSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SemiSccSweep, MatchesOracle) {
  const auto [nodes, edges, seed] = GetParam();
  RunAndVerify(gen::RandomDigraphEdges(nodes, edges, seed,
                                       /*allow_degenerate=*/seed % 2 == 0));
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, SemiSccSweep,
    ::testing::Combine(::testing::Values(20, 100, 400),
                       ::testing::Values(30, 200, 1200),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace extscc
