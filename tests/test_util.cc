#include "test_util.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "graph/digraph.h"
#include "scc/scc_verify.h"
#include "scc/tarjan.h"
#include "util/csv.h"

namespace extscc::testing {

void ApplyTestEnvOptions(io::IoContextOptions* options) {
  if (const char* env = std::getenv("EXTSCC_TEST_SORT_THREADS")) {
    if (env[0] != '\0') {
      options->sort_threads =
          static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
    }
  }
  if (const char* env = std::getenv("EXTSCC_TEST_IO_THREADS")) {
    if (env[0] != '\0') {
      options->io_threads =
          static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
    }
  }
  if (const char* env = std::getenv("EXTSCC_TEST_DEVICE_MODEL")) {
    if (env[0] != '\0') {
      const std::string error =
          io::ParseDeviceModelSpec(env, &options->device_model);
      if (!error.empty()) {
        ADD_FAILURE() << "EXTSCC_TEST_DEVICE_MODEL: " << error;
      }
    }
  }
  if (const char* env = std::getenv("EXTSCC_TEST_SCRATCH_DIRS")) {
    if (env[0] != '\0') options->scratch_dirs = util::SplitCommaList(env);
  }
  if (const char* env = std::getenv("EXTSCC_TEST_PLACEMENT")) {
    if (env[0] != '\0') {
      const std::string error =
          io::ParsePlacementSpec(env, &options->scratch_placement);
      if (!error.empty()) {
        ADD_FAILURE() << "EXTSCC_TEST_PLACEMENT: " << error;
      }
    }
  }
}

namespace {

std::unique_ptr<io::IoContext> MakeContextWithModel(
    std::uint64_t memory_bytes, std::size_t block_size,
    io::DeviceModel model) {
  io::IoContextOptions options;
  options.block_size = block_size;
  options.memory_bytes = memory_bytes;
  options.device_model.model = model;
  // The environment wins over the suite's requested backing, so the CI
  // matrix (threaded, multidevice) drives every fixture-built suite.
  ApplyTestEnvOptions(&options);
  return std::make_unique<io::IoContext>(options);
}

}  // namespace

std::unique_ptr<io::IoContext> MakeTestContext(std::uint64_t memory_bytes,
                                               std::size_t block_size) {
  return MakeContextWithModel(memory_bytes, block_size,
                              io::DeviceModel::kPosix);
}

std::unique_ptr<io::IoContext> MakeMemTestContext(std::uint64_t memory_bytes,
                                                  std::size_t block_size) {
  return MakeContextWithModel(memory_bytes, block_size,
                              io::DeviceModel::kMem);
}

scc::SccResult Oracle(const std::vector<graph::Edge>& edges,
                      const std::vector<graph::NodeId>& extra_nodes) {
  graph::Digraph g(extra_nodes, edges);
  return scc::TarjanScc(g);
}

bool OracleReach(const graph::Digraph& g, graph::NodeId from,
                 graph::NodeId to) {
  const std::size_t s = g.index_of(from);
  const std::size_t t = g.index_of(to);
  if (s == g.num_nodes() || t == g.num_nodes()) return from == to;
  return graph::BfsReachable(g, s, t);
}

void ExpectSccFileMatchesOracle(io::IoContext* context,
                                const graph::DiskGraph& g,
                                const std::string& scc_path,
                                const char* label) {
  std::string explanation;
  const bool ok = scc::VerifySccFile(context, g, scc_path, &explanation);
  EXPECT_TRUE(ok) << label << ": " << explanation;
}

}  // namespace extscc::testing
