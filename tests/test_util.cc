#include "test_util.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "graph/digraph.h"
#include "scc/scc_verify.h"
#include "scc/tarjan.h"

namespace extscc::testing {

std::unique_ptr<io::IoContext> MakeTestContext(std::uint64_t memory_bytes,
                                               std::size_t block_size) {
  io::IoContextOptions options;
  options.block_size = block_size;
  options.memory_bytes = memory_bytes;
  // EXTSCC_TEST_SORT_THREADS=N runs every suite built on this fixture
  // with overlapped run formation — the CI threaded job sets 1 and
  // expects identical results (sorted outputs are byte-identical by
  // design; only wall overlap changes).
  if (const char* env = std::getenv("EXTSCC_TEST_SORT_THREADS")) {
    if (env[0] != '\0') {
      options.sort_threads =
          static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
    }
  }
  return std::make_unique<io::IoContext>(options);
}

scc::SccResult Oracle(const std::vector<graph::Edge>& edges,
                      const std::vector<graph::NodeId>& extra_nodes) {
  graph::Digraph g(extra_nodes, edges);
  return scc::TarjanScc(g);
}

void ExpectSccFileMatchesOracle(io::IoContext* context,
                                const graph::DiskGraph& g,
                                const std::string& scc_path,
                                const char* label) {
  std::string explanation;
  const bool ok = scc::VerifySccFile(context, g, scc_path, &explanation);
  EXPECT_TRUE(ok) << label << ": " << explanation;
}

}  // namespace extscc::testing
