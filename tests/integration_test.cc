// End-to-end integration: full pipelines on generated workloads under
// many (M, B) machine configurations, I/O-accounting sanity (Ext-SCC is
// scan/sort dominated; DFS-SCC is random-I/O dominated), INF censoring,
// and corrupt-input handling.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "baseline/dfs_scc.h"
#include "core/ext_scc.h"
#include "gen/synthetic_generator.h"
#include "gen/webgraph_generator.h"
#include "graph/disk_graph.h"
#include "graph/graph_io.h"
#include "io/record_stream.h"
#include "scc/scc_verify.h"
#include "scc/semi_external_scc.h"
#include "test_util.h"

namespace extscc {
namespace {

using core::ExtSccOptions;
using testing::MakeTestContext;

struct MachineConfig {
  std::uint64_t memory;
  std::size_t block;
};

class MachineSweep : public ::testing::TestWithParam<MachineConfig> {};

TEST_P(MachineSweep, SyntheticWorkloadEndToEnd) {
  const auto config = GetParam();
  auto ctx = MakeTestContext(config.memory, config.block);
  gen::SyntheticParams params;
  params.num_nodes = 800;
  params.avg_degree = 3.0;
  params.sccs = {{2, 50}, {8, 10}};
  params.seed = 90;
  const auto g = gen::GenerateSynthetic(ctx.get(), params);
  const auto oracle = scc::OraclePartition(ctx.get(), g);
  for (const bool op : {false, true}) {
    const std::string out = ctx->NewTempPath("out");
    auto result = core::RunExtScc(
        ctx.get(), g, out,
        op ? ExtSccOptions::Optimized() : ExtSccOptions::Basic());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const auto partition = scc::LoadSccResult(ctx.get(), out);
    ASSERT_TRUE(scc::SamePartition(oracle, partition))
        << "M=" << config.memory << " B=" << config.block << " op=" << op
        << ": " << scc::ExplainPartitionDifference(oracle, partition);
    // Contraction ran iff the node set exceeds the semi-external budget.
    const bool fits =
        scc::SemiExternalScc::Fits(g.num_nodes, ctx->memory());
    EXPECT_EQ(result.value().num_levels() == 0, fits);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Machines, MachineSweep,
    ::testing::Values(MachineConfig{4 << 10, 256},   // 256-node budget
                      MachineConfig{8 << 10, 512},
                      MachineConfig{16 << 10, 1024},
                      MachineConfig{1 << 20, 4096}));  // everything fits

TEST(IoProfileTest, ExtSccIsSequentialDominated) {
  auto ctx = MakeTestContext(/*memory_bytes=*/4 << 10, /*block_size=*/256);
  gen::SyntheticParams params;
  params.num_nodes = 1000;
  params.avg_degree = 3.0;
  params.sccs = {{4, 25}};
  params.seed = 91;
  const auto g = gen::GenerateSynthetic(ctx.get(), params);
  const auto before = ctx->stats();
  const std::string out = ctx->NewTempPath("out");
  ASSERT_TRUE(
      core::RunExtScc(ctx.get(), g, out, ExtSccOptions::Optimized()).ok());
  const auto delta = ctx->stats() - before;
  // The paper's design point: contraction/expansion use only scans and
  // sorts. Random I/Os arise only from stream (re)opens, so sequential
  // traffic must dominate clearly.
  EXPECT_GT(delta.sequential_reads + delta.sequential_writes,
            3 * delta.random_ios())
      << delta.ToString();
}

TEST(IoProfileTest, DfsSccIsRandomDominatedRelativeToExtScc) {
  gen::WebGraphParams params;
  params.num_nodes = 1200;
  params.avg_out_degree = 5.0;
  params.seed = 92;

  // DFS-SCC run.
  std::uint64_t dfs_random, dfs_total;
  {
    auto ctx = MakeTestContext(/*memory_bytes=*/8 << 10, /*block_size=*/512);
    const auto g = gen::GenerateWebGraph(ctx.get(), params);
    const auto before = ctx->stats();
    const std::string out = ctx->NewTempPath("out");
    ASSERT_TRUE(baseline::RunDfsScc(ctx.get(), g, out).ok());
    const auto delta = ctx->stats() - before;
    dfs_random = delta.random_ios();
    dfs_total = delta.total_ios();
  }
  // Ext-SCC run on the identical machine + workload.
  std::uint64_t ext_random, ext_total;
  {
    auto ctx = MakeTestContext(/*memory_bytes=*/8 << 10, /*block_size=*/512);
    const auto g = gen::GenerateWebGraph(ctx.get(), params);
    const auto before = ctx->stats();
    const std::string out = ctx->NewTempPath("out");
    ASSERT_TRUE(
        core::RunExtScc(ctx.get(), g, out, ExtSccOptions::Optimized()).ok());
    const auto delta = ctx->stats() - before;
    ext_random = delta.random_ios();
    ext_total = delta.total_ios();
  }
  const double dfs_ratio =
      static_cast<double>(dfs_random) / static_cast<double>(dfs_total);
  const double ext_ratio =
      static_cast<double>(ext_random) / static_cast<double>(ext_total);
  EXPECT_GT(dfs_ratio, 2 * ext_ratio)
      << "dfs random ratio " << dfs_ratio << " vs ext " << ext_ratio;
}

TEST(CensoringTest, DfsSccInfUnderExtSccDerivedBudget) {
  // The benches censor DFS-SCC at a multiple of Ext-SCC's I/O count;
  // verify the mechanism end to end on a workload where DFS-SCC needs
  // far more I/Os.
  gen::WebGraphParams params;
  params.num_nodes = 1500;
  params.seed = 93;
  std::uint64_t ext_ios;
  {
    auto ctx = MakeTestContext(/*memory_bytes=*/8 << 10, /*block_size=*/512);
    const auto g = gen::GenerateWebGraph(ctx.get(), params);
    const std::string out = ctx->NewTempPath("out");
    auto result =
        core::RunExtScc(ctx.get(), g, out, ExtSccOptions::Optimized());
    ASSERT_TRUE(result.ok());
    ext_ios = result.value().total_ios;
  }
  {
    auto ctx = MakeTestContext(/*memory_bytes=*/8 << 10, /*block_size=*/512);
    const auto g = gen::GenerateWebGraph(ctx.get(), params);
    ctx->set_io_budget(ctx->stats().total_ios() + ext_ios / 4);
    const std::string out = ctx->NewTempPath("out");
    auto result = baseline::RunDfsScc(ctx.get(), g, out);
    ASSERT_FALSE(result.ok()) << "DFS-SCC should blow a quarter of "
                                 "Ext-SCC's budget on this workload";
    EXPECT_EQ(result.status().code(), util::StatusCode::kResourceExhausted);
  }
}

TEST(RobustnessTest, TextPipelineEndToEnd) {
  auto ctx = MakeTestContext(/*memory_bytes=*/1 << 20);
  // Write a text graph, load it, solve it, save labels next to it.
  // (A real filesystem path: text input is user-facing, and scratch
  // paths are virtual names under the mem/striped test matrices.)
  const std::string text = ::testing::TempDir() + "/extscc_input.txt";
  {
    std::vector<std::string> lines = {"# demo", "1 2", "2 3", "3 1", "3 4"};
    std::string blob;
    for (const auto& line : lines) blob += line + "\n";
    std::ofstream out(text);
    out << blob;
  }
  auto loaded = graph::LoadTextEdgeList(ctx.get(), text);
  ASSERT_TRUE(loaded.ok());
  const std::string out = ctx->NewTempPath("scc");
  auto result = core::RunExtScc(ctx.get(), loaded.value(), out,
                                ExtSccOptions::Optimized());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_sccs, 2u);  // {1,2,3} and {4}
}

TEST(RobustnessTest, RepeatedRunsAreDeterministic) {
  gen::SyntheticParams params;
  params.num_nodes = 500;
  params.avg_degree = 3.0;
  params.sccs = {{3, 20}};
  params.seed = 94;
  std::vector<std::uint64_t> ios;
  std::vector<std::uint64_t> sccs;
  for (int run = 0; run < 2; ++run) {
    auto ctx = MakeTestContext(/*memory_bytes=*/4 << 10, /*block_size=*/256);
    const auto g = gen::GenerateSynthetic(ctx.get(), params);
    const std::string out = ctx->NewTempPath("out");
    auto result =
        core::RunExtScc(ctx.get(), g, out, ExtSccOptions::Optimized());
    ASSERT_TRUE(result.ok());
    ios.push_back(result.value().total_ios);
    sccs.push_back(result.value().num_sccs);
  }
  EXPECT_EQ(ios[0], ios[1]) << "same graph + machine => same I/O count";
  EXPECT_EQ(sccs[0], sccs[1]);
}

}  // namespace
}  // namespace extscc
