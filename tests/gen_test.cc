#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gen/classic_graphs.h"
#include "gen/rmat_generator.h"
#include "gen/synthetic_generator.h"
#include "gen/webgraph_generator.h"
#include "graph/digraph.h"
#include "graph/node_file.h"
#include "io/record_stream.h"
#include "scc/scc_verify.h"
#include "scc/tarjan.h"
#include "test_util.h"

namespace extscc {
namespace {

using testing::MakeTestContext;

// ---------------- classic graphs -----------------------------------------

TEST(ClassicGraphsTest, Fig1Shape) {
  const auto edges = gen::Fig1Edges();
  EXPECT_EQ(edges.size(), 20u);
  graph::Digraph g(edges);
  EXPECT_EQ(g.num_nodes(), 13u);
  const auto sccs = scc::TarjanScc(g);
  EXPECT_EQ(sccs.SortedComponentSizes(),
            (std::vector<std::uint64_t>{6, 4, 1, 1, 1}));
}

TEST(ClassicGraphsTest, CyclePathComplete) {
  EXPECT_EQ(gen::CycleEdges(7).size(), 7u);
  EXPECT_EQ(gen::PathEdges(7).size(), 6u);
  EXPECT_EQ(gen::CompleteDigraphEdges(5).size(), 20u);
  EXPECT_TRUE(gen::PathEdges(1).empty());
}

TEST(ClassicGraphsTest, RandomDagIsAcyclic) {
  const auto edges = gen::RandomDagEdges(100, 400, 3);
  for (const auto& e : edges) EXPECT_LT(e.src, e.dst);
  graph::Digraph g(edges);
  EXPECT_EQ(scc::TarjanScc(g).num_sccs(), g.num_nodes());
}

TEST(ClassicGraphsTest, CycleChainSccs) {
  graph::Digraph g(gen::CycleChainEdges(4, 5));
  const auto sccs = scc::TarjanScc(g);
  EXPECT_EQ(sccs.num_sccs(), 4u);
  EXPECT_EQ(sccs.LargestComponent(), 5u);
}

TEST(ClassicGraphsTest, RandomDigraphDeterministicPerSeed) {
  EXPECT_EQ(gen::RandomDigraphEdges(50, 100, 9),
            gen::RandomDigraphEdges(50, 100, 9));
  EXPECT_NE(gen::RandomDigraphEdges(50, 100, 9),
            gen::RandomDigraphEdges(50, 100, 10));
}

// ---------------- synthetic (Table I) ------------------------------------

TEST(SyntheticGeneratorTest, PlantedSccsExactWithoutNoise) {
  auto ctx = MakeTestContext(/*memory_bytes=*/8 << 20);
  gen::SyntheticParams params;
  params.num_nodes = 2000;
  params.sccs = {{3, 50}, {10, 5}};
  params.extra_random_edges = false;
  params.seed = 5;
  const auto g = gen::GenerateSynthetic(ctx.get(), params);
  EXPECT_EQ(g.num_nodes, 2000u);
  const auto oracle = scc::OraclePartition(ctx.get(), g);
  auto sizes = oracle.SortedComponentSizes();
  // 3 SCCs of 50, 10 of 5, rest singletons.
  ASSERT_GE(sizes.size(), 13u);
  EXPECT_EQ(sizes[0], 50u);
  EXPECT_EQ(sizes[1], 50u);
  EXPECT_EQ(sizes[2], 50u);
  for (int i = 3; i < 13; ++i) EXPECT_EQ(sizes[i], 5u);
  EXPECT_EQ(oracle.num_sccs(), 3u + 10u + (2000u - 200u));
}

TEST(SyntheticGeneratorTest, EdgeBudgetHonored) {
  auto ctx = MakeTestContext(/*memory_bytes=*/8 << 20);
  gen::SyntheticParams params;
  params.num_nodes = 5000;
  params.avg_degree = 4.0;
  params.sccs = {{5, 40}};
  params.seed = 6;
  const auto g = gen::GenerateSynthetic(ctx.get(), params);
  EXPECT_GE(g.num_edges, 20000u);
  EXPECT_LE(g.num_edges, 20000u + 300u) << "roughly |V| * D edges";
  EXPECT_EQ(g.num_nodes, 5000u);
}

TEST(SyntheticGeneratorTest, TableIPresets) {
  const auto massive = gen::MassiveSccParams(10'000, 4.0, 400, 1);
  ASSERT_EQ(massive.sccs.size(), 1u);
  EXPECT_EQ(massive.sccs[0].count, 1u);
  EXPECT_EQ(massive.sccs[0].size, 400u);

  const auto large = gen::LargeSccParams(10'000, 4.0, 50, 80, 1);
  EXPECT_EQ(large.sccs[0].count, 50u);
  EXPECT_EQ(large.sccs[0].size, 80u);

  const auto small = gen::SmallSccParams(10'000, 4.0, 100, 40, 1);
  EXPECT_EQ(small.sccs[0].count, 100u);
  EXPECT_EQ(small.sccs[0].size, 40u);
}

TEST(SyntheticGeneratorTest, MassivePresetContainsItsGiantScc) {
  auto ctx = MakeTestContext(/*memory_bytes=*/8 << 20);
  const auto params = gen::MassiveSccParams(3000, 3.0, 300, 9);
  const auto g = gen::GenerateSynthetic(ctx.get(), params);
  const auto oracle = scc::OraclePartition(ctx.get(), g);
  // Random noise edges may only enlarge the planted SCC, never shrink it.
  EXPECT_GE(oracle.LargestComponent(), 300u);
}

TEST(SyntheticGeneratorDeathTest, RejectsOversizedPlanting) {
  auto ctx = MakeTestContext(/*memory_bytes=*/8 << 20);
  gen::SyntheticParams params;
  params.num_nodes = 10;
  params.sccs = {{1, 100}};
  EXPECT_DEATH(gen::GenerateSynthetic(ctx.get(), params), "exceed");
}

// ---------------- web graph ----------------------------------------------

TEST(WebGraphGeneratorTest, BasicShape) {
  auto ctx = MakeTestContext(/*memory_bytes=*/8 << 20);
  gen::WebGraphParams params;
  params.num_nodes = 3000;
  params.avg_out_degree = 6.0;
  params.seed = 11;
  const auto g = gen::GenerateWebGraph(ctx.get(), params);
  EXPECT_EQ(g.num_nodes, 3000u);
  EXPECT_GT(g.num_edges, 3000u);
  EXPECT_TRUE(graph::IsNodeFileCanonical(ctx.get(), g.node_path));
}

TEST(WebGraphGeneratorTest, GrowsAGiantScc) {
  auto ctx = MakeTestContext(/*memory_bytes=*/8 << 20);
  gen::WebGraphParams params;
  params.num_nodes = 3000;
  params.reciprocal_prob = 0.3;
  params.seed = 12;
  const auto g = gen::GenerateWebGraph(ctx.get(), params);
  const auto oracle = scc::OraclePartition(ctx.get(), g);
  EXPECT_GT(oracle.LargestComponent(), g.num_nodes / 5)
      << "bow-tie core should be a sizable fraction of the graph";
}

TEST(WebGraphGeneratorTest, HeavyTailInDegrees) {
  auto ctx = MakeTestContext(/*memory_bytes=*/8 << 20);
  gen::WebGraphParams params;
  params.num_nodes = 5000;
  params.seed = 13;
  const auto g = gen::GenerateWebGraph(ctx.get(), params);
  const auto edges = io::ReadAllRecords<graph::Edge>(ctx.get(), g.edge_path);
  std::vector<std::uint32_t> in_deg(params.num_nodes, 0);
  for (const auto& e : edges) in_deg[e.dst] += 1;
  const auto max_in = *std::max_element(in_deg.begin(), in_deg.end());
  const double mean_in = static_cast<double>(edges.size()) /
                         static_cast<double>(params.num_nodes);
  EXPECT_GT(max_in, 20 * mean_in)
      << "copying model must produce heavy-tailed in-degrees";
}

TEST(WebGraphGeneratorTest, EdgeFractionScalesSize) {
  auto ctx = MakeTestContext(/*memory_bytes=*/8 << 20);
  gen::WebGraphParams full;
  full.num_nodes = 2000;
  full.seed = 14;
  const auto g_full = gen::GenerateWebGraph(ctx.get(), full);
  gen::WebGraphParams fifth = full;
  fifth.edge_fraction = 0.2;
  const auto g_fifth = gen::GenerateWebGraph(ctx.get(), fifth);
  EXPECT_EQ(g_fifth.num_nodes, g_full.num_nodes);
  EXPECT_LT(g_fifth.num_edges, g_full.num_edges / 3);
  EXPECT_GT(g_fifth.num_edges, 0u);
}

TEST(WebGraphGeneratorTest, DeterministicPerSeed) {
  auto ctx = MakeTestContext(/*memory_bytes=*/8 << 20);
  gen::WebGraphParams params;
  params.num_nodes = 500;
  params.seed = 15;
  const auto a = gen::GenerateWebGraph(ctx.get(), params);
  const auto b = gen::GenerateWebGraph(ctx.get(), params);
  EXPECT_EQ(a.num_edges, b.num_edges);
  EXPECT_EQ(io::ReadAllRecords<graph::Edge>(ctx.get(), a.edge_path),
            io::ReadAllRecords<graph::Edge>(ctx.get(), b.edge_path));
}

// ---- R-MAT ---------------------------------------------------------------

TEST(RmatGeneratorTest, ProducesRequestedCounts) {
  auto ctx = MakeTestContext(/*memory_bytes=*/8 << 20);
  gen::RmatParams params;
  params.num_nodes = 1000;  // not a power of two on purpose
  params.num_edges = 4000;
  const auto g = gen::GenerateRmat(ctx.get(), params);
  EXPECT_EQ(g.num_nodes, 1000u) << "every node of [0, n) must be present";
  EXPECT_EQ(g.num_edges, 4000u);
  for (const auto& e : io::ReadAllRecords<graph::Edge>(ctx.get(),
                                                       g.edge_path)) {
    EXPECT_LT(e.src, 1000u);
    EXPECT_LT(e.dst, 1000u);
  }
}

TEST(RmatGeneratorTest, DeterministicPerSeed) {
  auto ctx = MakeTestContext(/*memory_bytes=*/8 << 20);
  gen::RmatParams params;
  params.num_nodes = 512;
  params.num_edges = 2048;
  params.seed = 9;
  const auto a = gen::GenerateRmat(ctx.get(), params);
  const auto b = gen::GenerateRmat(ctx.get(), params);
  EXPECT_EQ(io::ReadAllRecords<graph::Edge>(ctx.get(), a.edge_path),
            io::ReadAllRecords<graph::Edge>(ctx.get(), b.edge_path));
  gen::RmatParams other = params;
  other.seed = 10;
  const auto c = gen::GenerateRmat(ctx.get(), other);
  EXPECT_NE(io::ReadAllRecords<graph::Edge>(ctx.get(), a.edge_path),
            io::ReadAllRecords<graph::Edge>(ctx.get(), c.edge_path));
}

TEST(RmatGeneratorTest, SkewProducesHubs) {
  auto ctx = MakeTestContext(/*memory_bytes=*/8 << 20);
  gen::RmatParams params;
  params.num_nodes = 1024;
  params.num_edges = 8192;
  const auto g = gen::GenerateRmat(ctx.get(), params);
  std::vector<std::uint32_t> out_deg(1024, 0);
  for (const auto& e : io::ReadAllRecords<graph::Edge>(ctx.get(),
                                                       g.edge_path)) {
    ++out_deg[e.src];
  }
  const auto max_deg = *std::max_element(out_deg.begin(), out_deg.end());
  const double avg = 8192.0 / 1024.0;
  EXPECT_GT(max_deg, 8 * avg)
      << "Graph500 parameters should produce heavy-tailed out-degrees";
}

TEST(RmatGeneratorDeathTest, RejectsBadProbabilities) {
  auto ctx = MakeTestContext();
  gen::RmatParams params;
  params.a = 0.6;  // sum now 1.03
  EXPECT_DEATH(gen::GenerateRmat(ctx.get(), params), "sum to 1");
}

}  // namespace
}  // namespace extscc
