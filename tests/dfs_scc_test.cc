#include <gtest/gtest.h>

#include <vector>

#include "baseline/dfs_scc.h"
#include "baseline/external_dfs.h"
#include "gen/classic_graphs.h"
#include "graph/disk_graph.h"
#include "io/record_stream.h"
#include "scc/scc_verify.h"
#include "test_util.h"

namespace extscc {
namespace {

using baseline::BuildDiskCsr;
using baseline::RunDfsScc;
using graph::Edge;
using graph::NodeId;
using testing::MakeTestContext;

// ---------------- CSR construction ---------------------------------------

TEST(DiskCsrTest, ForwardLayout) {
  auto ctx = MakeTestContext();
  // Node ids 10, 20, 30 -> dense 0, 1, 2.
  const auto g =
      graph::MakeDiskGraph(ctx.get(), {{10, 20}, {10, 30}, {30, 10}});
  const auto csr = BuildDiskCsr(ctx.get(), g, /*reversed=*/false);
  EXPECT_EQ(csr.num_nodes, 3u);
  EXPECT_EQ(csr.num_edges, 3u);
  const auto offsets =
      io::ReadAllRecords<std::uint64_t>(ctx.get(), csr.offsets_path);
  const auto targets =
      io::ReadAllRecords<std::uint32_t>(ctx.get(), csr.targets_path);
  EXPECT_EQ(offsets, (std::vector<std::uint64_t>{0, 2, 2, 3}));
  EXPECT_EQ(targets, (std::vector<std::uint32_t>{1, 2, 0}));
}

TEST(DiskCsrTest, ReversedLayout) {
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), {{10, 20}, {10, 30}});
  const auto csr = BuildDiskCsr(ctx.get(), g, /*reversed=*/true);
  const auto offsets =
      io::ReadAllRecords<std::uint64_t>(ctx.get(), csr.offsets_path);
  const auto targets =
      io::ReadAllRecords<std::uint32_t>(ctx.get(), csr.targets_path);
  EXPECT_EQ(offsets, (std::vector<std::uint64_t>{0, 0, 1, 2}));
  EXPECT_EQ(targets, (std::vector<std::uint32_t>{0, 0}));
}

TEST(DiskCsrTest, IsolatedNodesGetEmptyRows) {
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), {{5, 6}}, {1, 9});
  const auto csr = BuildDiskCsr(ctx.get(), g, false);
  EXPECT_EQ(csr.num_nodes, 4u);
  const auto offsets =
      io::ReadAllRecords<std::uint64_t>(ctx.get(), csr.offsets_path);
  ASSERT_EQ(offsets.size(), 5u);
  EXPECT_EQ(offsets.back(), 1u);
}

// ---------------- DFS-SCC end-to-end --------------------------------------

void RunAndVerify(const std::vector<Edge>& edges,
                  const std::vector<NodeId>& extra_nodes = {}) {
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), edges, extra_nodes);
  const std::string out = ctx->NewTempPath("scc");
  auto result = RunDfsScc(ctx.get(), g, out);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  testing::ExpectSccFileMatchesOracle(ctx.get(), g, out, "DFS-SCC");
}

TEST(DfsSccTest, Fig1) { RunAndVerify(gen::Fig1Edges()); }

TEST(DfsSccTest, EmptyGraph) {
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), {});
  const std::string out = ctx->NewTempPath("scc");
  auto result = RunDfsScc(ctx.get(), g, out);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_sccs, 0u);
}

TEST(DfsSccTest, ClassicShapes) {
  RunAndVerify(gen::CycleEdges(40));
  RunAndVerify(gen::PathEdges(40));
  RunAndVerify(gen::CycleChainEdges(5, 6));
  RunAndVerify({{1, 1}, {2, 3}, {3, 2}, {2, 3}});
  RunAndVerify({{1, 2}}, {50, 60});
}

TEST(DfsSccTest, StatsShowBrtTraffic) {
  auto ctx = MakeTestContext(/*memory_bytes=*/1 << 20, /*block_size=*/512);
  const auto g = graph::MakeDiskGraph(
      ctx.get(), gen::RandomDigraphEdges(200, 800, 31));
  const std::string out = ctx->NewTempPath("scc");
  auto result = RunDfsScc(ctx.get(), g, out);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().brt_inserts, 0u);
  EXPECT_GT(result.value().brt_extracts, 0u);
  EXPECT_GT(result.value().total_ios, 0u);
}

TEST(DfsSccTest, IoBudgetProducesInf) {
  auto ctx = MakeTestContext(/*memory_bytes=*/1 << 20, /*block_size=*/512);
  ctx->set_io_budget(50);
  const auto g = graph::MakeDiskGraph(
      ctx.get(), gen::RandomDigraphEdges(500, 2000, 33));
  const std::string out = ctx->NewTempPath("scc");
  auto result = RunDfsScc(ctx.get(), g, out);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kResourceExhausted);
}

TEST(DfsSccTest, RandomIoDominatesOnScatteredGraphs) {
  // The paper's core observation: external DFS generates mostly random
  // I/Os, unlike Ext-SCC's scan/sort pipeline.
  auto ctx = MakeTestContext(/*memory_bytes=*/1 << 20, /*block_size=*/512);
  const auto g = graph::MakeDiskGraph(
      ctx.get(), gen::RandomDigraphEdges(400, 1600, 35));
  const auto before = ctx->stats();
  const std::string out = ctx->NewTempPath("scc");
  ASSERT_TRUE(RunDfsScc(ctx.get(), g, out).ok());
  const auto delta = ctx->stats() - before;
  EXPECT_GT(delta.random_reads, delta.sequential_reads / 4)
      << "DFS adjacency fetches should contribute heavy random reads";
}

// Sweep: correctness across random graphs.
class DfsSccSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DfsSccSweep, MatchesOracle) {
  const auto [nodes, edge_count, seed] = GetParam();
  RunAndVerify(gen::RandomDigraphEdges(nodes, edge_count, seed,
                                       /*allow_degenerate=*/seed % 2 == 1));
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, DfsSccSweep,
    ::testing::Combine(::testing::Values(20, 100, 300),
                       ::testing::Values(40, 400),
                       ::testing::Values(1, 2)));

}  // namespace
}  // namespace extscc
