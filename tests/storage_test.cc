// Storage-device API tests: MemDevice/ThrottledDevice round trips and
// accounting equivalence with PosixDevice, the kSpreadGroup placement
// invariant (no two runs of one merge group share a device when the
// device count covers the fan-in), per-device stats summing exactly to
// the aggregate IoStats, and the round-robin default staying
// byte-identical to the pre-device engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <iterator>
#include <memory>
#include <set>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/ext_scc.h"
#include "extsort/external_sorter.h"
#include "gen/synthetic_generator.h"
#include "graph/graph_types.h"
#include "io/io_context.h"
#include "io/record_stream.h"
#include "io/storage.h"
#include "test_util.h"
#include "util/random.h"
#include "util/timer.h"

namespace extscc {
namespace {

using graph::Edge;
using graph::NodeId;

struct U64Less {
  bool operator()(std::uint64_t a, std::uint64_t b) const { return a < b; }
};

std::vector<std::uint64_t> RandomValues(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint64_t> out(n);
  for (auto& v : out) v = rng.Next();
  return out;
}

// Status-checked open for tests exercising devices directly.
std::unique_ptr<io::StorageFile> OpenOrDie(io::StorageDevice* device,
                                           const std::string& path,
                                           io::OpenMode mode) {
  std::unique_ptr<io::StorageFile> file;
  const util::Status status = device->Open(path, mode, &file);
  CHECK(status.ok()) << status.ToString();
  return file;
}

std::unique_ptr<io::IoContext> MakeContext(io::DeviceModel model,
                                           std::size_t num_devices,
                                           io::PlacementPolicy placement,
                                           std::uint64_t memory = 16 << 10,
                                           std::size_t block = 1024) {
  io::IoContextOptions options;
  options.block_size = block;
  options.memory_bytes = memory;
  options.device_model.model = model;
  // Keep the simulated devices effectively free for tests.
  options.device_model.throttle_latency_us = 0;
  options.device_model.throttle_mb_per_sec = 0;
  options.scratch_placement = placement;
  // Under kMem/kThrottled-with-empty-parent the entries only set the
  // device count; no directories are created under these names.
  for (std::size_t i = 0; i < num_devices; ++i) {
    options.scratch_dirs.push_back("");
  }
  if (num_devices <= 1) options.scratch_dirs.clear();
  return std::make_unique<io::IoContext>(options);
}

// ---- device round trips ----------------------------------------------

TEST(StorageDeviceTest, MemDeviceRoundTrip) {
  auto ctx = MakeContext(io::DeviceModel::kMem, 1,
                         io::PlacementPolicy::kRoundRobin);
  auto values = RandomValues(10'000, 5);
  const std::string path = ctx->NewTempPath("mem_rt");
  io::WriteAllRecords(ctx.get(), path, values);
  EXPECT_EQ(io::ReadAllRecords<std::uint64_t>(ctx.get(), path), values);
  // Truncating reopen resets the contents, like a posix O_TRUNC.
  io::WriteAllRecords(ctx.get(), path,
                      std::vector<std::uint64_t>{1, 2, 3});
  EXPECT_EQ(io::ReadAllRecords<std::uint64_t>(ctx.get(), path),
            (std::vector<std::uint64_t>{1, 2, 3}));
  ctx->temp_files().Remove(path);
  EXPECT_GT(ctx->stats().total_ios(), 0u);
}

TEST(StorageDeviceTest, MemWriteThroughReadHandleFailsLikePosix) {
  // pwrite on an O_RDONLY fd fails on posix; the mem device must keep
  // that contract so mode bugs surface on RAM-backed suites too. Under
  // the typed-error contract the failure is an errno-carrying IoError
  // parked on the file's sticky status and latched on the context —
  // never a crash.
  auto ctx = MakeContext(io::DeviceModel::kMem, 1,
                         io::PlacementPolicy::kRoundRobin);
  const std::string path = ctx->NewTempPath("ro");
  io::WriteAllRecords(ctx.get(), path, std::vector<std::uint64_t>{1, 2});
  io::BlockFile file(ctx.get(), path, io::OpenMode::kRead);
  const std::uint64_t payload = 9;
  file.WriteBlock(0, &payload, sizeof(payload));
  ASSERT_FALSE(file.status().ok());
  EXPECT_EQ(file.status().code(), util::StatusCode::kIoError);
  EXPECT_EQ(file.status().sys_errno(), EBADF);
  EXPECT_NE(file.status().message().find("read-only"), std::string::npos);
  EXPECT_TRUE(ctx->has_io_error());
  EXPECT_EQ(ctx->io_error().code(), util::StatusCode::kIoError);
  // The file's contents are untouched: the write was refused, not torn.
  EXPECT_EQ(io::ReadAllRecords<std::uint64_t>(ctx.get(), path),
            (std::vector<std::uint64_t>{1, 2}));
  ctx->reset_io_error();
}

TEST(StorageDeviceTest, ThrottledDeviceRoundTrip) {
  auto ctx = MakeContext(io::DeviceModel::kThrottled, 2,
                         io::PlacementPolicy::kRoundRobin);
  auto values = RandomValues(20'000, 6);
  const std::string in = ctx->NewTempPath("in");
  const std::string out = ctx->NewTempPath("out");
  io::WriteAllRecords(ctx.get(), in, values);
  extsort::SortFile<std::uint64_t, U64Less>(ctx.get(), in, out, U64Less());
  std::sort(values.begin(), values.end());
  EXPECT_EQ(io::ReadAllRecords<std::uint64_t>(ctx.get(), out), values);
}

// The device model never changes the block accounting: the same sort on
// MemDevice and PosixDevice scratch must count identical I/Os, field by
// field — the oracle that keeps the mem-scratch test suites honest
// about the I/O model.
TEST(StorageDeviceTest, MemAccountingIdenticalToPosix) {
  const auto values = RandomValues(60'000, 7);
  const auto run = [&](io::DeviceModel model) {
    auto ctx = MakeContext(model, 1, io::PlacementPolicy::kRoundRobin);
    const std::string in = ctx->NewTempPath("in");
    const std::string out = ctx->NewTempPath("out");
    io::WriteAllRecords(ctx.get(), in, values);
    extsort::SortFile<std::uint64_t, U64Less>(ctx.get(), in, out, U64Less());
    return ctx->stats();
  };
  const io::IoStats posix = run(io::DeviceModel::kPosix);
  const io::IoStats mem = run(io::DeviceModel::kMem);
  EXPECT_EQ(posix.sequential_reads, mem.sequential_reads);
  EXPECT_EQ(posix.random_reads, mem.random_reads);
  EXPECT_EQ(posix.sequential_writes, mem.sequential_writes);
  EXPECT_EQ(posix.random_writes, mem.random_writes);
  EXPECT_EQ(posix.bytes_read, mem.bytes_read);
  EXPECT_EQ(posix.bytes_written, mem.bytes_written);
  EXPECT_EQ(posix.files_created, mem.files_created);
}

// ---- placement --------------------------------------------------------

// Manager-level invariant: under kSpreadGroup, grouped files with
// distinct members land on distinct devices whenever the group's span
// fits the device count — regardless of interleaved ungrouped traffic
// (which would skew a round-robin assignment arbitrarily).
TEST(PlacementTest, SpreadGroupMembersOccupyDistinctDevices) {
  std::vector<std::unique_ptr<io::StorageDevice>> devices;
  for (int i = 0; i < 4; ++i) {
    devices.push_back(
        std::make_unique<io::MemDevice>("m" + std::to_string(i)));
  }
  io::TempFileManager manager(std::move(devices),
                              io::PlacementPolicy::kSpreadGroup);
  for (std::uint64_t group = 0; group < 6; ++group) {
    const std::uint64_t gid = manager.NextGroupId();
    std::set<const io::StorageDevice*> used;
    for (std::uint64_t member = 0; member < 4; ++member) {
      // Ungrouped noise between members must not cause collisions.
      manager.NewPath("noise");
      const io::ScratchFile file =
          manager.NewFile("run", io::Placement::InGroup(gid, member));
      EXPECT_EQ(manager.DeviceForPath(file.path), file.device);
      EXPECT_TRUE(used.insert(file.device).second)
          << "group " << gid << " member " << member
          << " collided on device " << file.device->name();
    }
  }
}

// End-to-end construction: FormRuns tags each spilled run with its sort
// group and ordinal, so under kSpreadGroup every fan-in-sized window of
// consecutive runs — exactly the merge groups the planner forms — sits
// on distinct devices when the device count covers the fan-in.
TEST(PlacementTest, FormRunsSpreadsMergeGroupsAcrossDevices) {
  const std::size_t kDevices = 8;
  auto ctx = MakeContext(io::DeviceModel::kMem, kDevices,
                         io::PlacementPolicy::kSpreadGroup,
                         /*memory=*/8 << 10, /*block=*/1024);
  const std::size_t fan_in = static_cast<std::size_t>(
      ctx->memory().MergeFanIn(ctx->block_size()));
  ASSERT_LE(fan_in, kDevices) << "geometry must satisfy devices >= fan-in";
  auto values = RandomValues(30'000, 11);
  const std::string in = ctx->NewTempPath("in");
  io::WriteAllRecords(ctx.get(), in, values);
  extsort::SortRunInfo info;
  auto formed = extsort::internal::FormRuns<std::uint64_t>(
      ctx.get(), in, U64Less(), /*dedup=*/false, &info);
  ASSERT_FALSE(formed.in_memory);
  ASSERT_GT(formed.runs.size(), fan_in) << "want a multi-group formation";
  for (std::size_t group = 0; group < formed.runs.size(); group += fan_in) {
    const std::size_t end = std::min(formed.runs.size(), group + fan_in);
    std::set<const io::StorageDevice*> used;
    for (std::size_t i = group; i < end; ++i) {
      const io::StorageDevice* device =
          ctx->temp_files().DeviceForPath(formed.runs[i]);
      ASSERT_NE(device, nullptr) << formed.runs[i];
      EXPECT_TRUE(used.insert(device).second)
          << "merge group at run " << group << ": runs " << i
          << " collided on " << device->name();
    }
  }
  for (const auto& run : formed.runs) ctx->temp_files().Remove(run);
}

// A spread- or striped-placement solve must still match the oracle
// partition, and its sorted labels must be byte-identical to the
// round-robin default — placement moves files (or blocks) between
// devices, never changes their bytes.
TEST(PlacementTest, SpreadAndStripedSolvesMatchRoundRobinAndOracle) {
  const auto solve = [](io::PlacementPolicy placement) {
    auto ctx = MakeContext(io::DeviceModel::kMem, 3, placement,
                           /*memory=*/96 << 10, /*block=*/4096);
    gen::SyntheticParams params;
    params.num_nodes = 4'000;
    params.avg_degree = 3.0;
    params.sccs = {{20, 40}};
    params.seed = 12;
    const auto g = gen::GenerateSynthetic(ctx.get(), params);
    const std::string scc_path = ctx->NewTempPath("scc");
    auto result = core::RunExtScc(ctx.get(), g, scc_path,
                                  core::ExtSccOptions::Optimized());
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    testing::ExpectSccFileMatchesOracle(ctx.get(), g, scc_path, "placement");
    return io::ReadAllRecords<graph::SccEntry>(ctx.get(), scc_path);
  };
  const auto rr = solve(io::PlacementPolicy::kRoundRobin);
  for (const auto placement : {io::PlacementPolicy::kSpreadGroup,
                               io::PlacementPolicy::kStriped}) {
    const auto other = solve(placement);
    ASSERT_EQ(rr.size(), other.size());
    for (std::size_t i = 0; i < rr.size(); ++i) {
      ASSERT_EQ(rr[i].node, other[i].node) << "at " << i;
      ASSERT_EQ(rr[i].scc, other[i].scc) << "at " << i;
    }
  }
}

// ---- per-device accounting -------------------------------------------

void ExpectDeviceStatsSumToAggregate(const io::IoContext& ctx) {
  io::IoStats sum;
  for (const auto& row : ctx.DeviceStats()) sum += row.stats;
  const io::IoStats& total = ctx.stats();
  EXPECT_EQ(sum.sequential_reads, total.sequential_reads);
  EXPECT_EQ(sum.random_reads, total.random_reads);
  EXPECT_EQ(sum.sequential_writes, total.sequential_writes);
  EXPECT_EQ(sum.random_writes, total.random_writes);
  EXPECT_EQ(sum.bytes_read, total.bytes_read);
  EXPECT_EQ(sum.bytes_written, total.bytes_written);
  EXPECT_EQ(sum.files_created, total.files_created);
}

TEST(DeviceStatsTest, PerDeviceSumsExactlyToAggregate) {
  auto ctx = MakeContext(io::DeviceModel::kMem, 3,
                         io::PlacementPolicy::kSpreadGroup,
                         /*memory=*/64 << 10, /*block=*/2048);
  gen::SyntheticParams params;
  params.num_nodes = 3'000;
  params.avg_degree = 3.0;
  params.sccs = {{15, 30}};
  params.seed = 9;
  const auto g = gen::GenerateSynthetic(ctx.get(), params);
  const std::string scc_path = ctx->NewTempPath("scc");
  auto result = core::RunExtScc(ctx.get(), g, scc_path,
                                core::ExtSccOptions::Optimized());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectDeviceStatsSumToAggregate(*ctx);
  // The critical path is bounded by the aggregate and, with >1 active
  // device, strictly below it; it is also the max over the rows.
  std::uint64_t max_row = 0;
  std::size_t active = 0;
  for (const auto& row : ctx->DeviceStats()) {
    max_row = std::max(max_row, row.stats.total_ios());
    if (row.stats.total_ios() > 0) ++active;
  }
  EXPECT_EQ(ctx->max_per_device_ios(), max_row);
  EXPECT_GE(active, 2u) << "striped solve should touch several devices";
  EXPECT_LT(ctx->max_per_device_ios(), ctx->stats().total_ios());
}

TEST(DeviceStatsTest, NonScratchTrafficLandsOnBaseDevice) {
  namespace fs = std::filesystem;
  auto ctx = MakeContext(io::DeviceModel::kMem, 1,
                         io::PlacementPolicy::kRoundRobin);
  const std::string outside =
      (fs::temp_directory_path() / "extscc_storage_test_outside.bin")
          .string();
  io::WriteAllRecords(ctx.get(), outside,
                      std::vector<std::uint64_t>{1, 2, 3});
  const auto rows = ctx->DeviceStats();
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows.front().name, "base");
  EXPECT_GT(rows.front().stats.total_ios(), 0u);
  ExpectDeviceStatsSumToAggregate(*ctx);
  fs::remove(outside);
}

// ---- defaults and validation -----------------------------------------

// The round-robin default must be byte-identical to the pre-device
// engine: same path names, same device choice by global sequence.
TEST(PlacementTest, RoundRobinDefaultIgnoresGroups) {
  std::vector<std::unique_ptr<io::StorageDevice>> devices;
  devices.push_back(std::make_unique<io::MemDevice>("m0"));
  devices.push_back(std::make_unique<io::MemDevice>("m1"));
  io::TempFileManager manager(std::move(devices),
                              io::PlacementPolicy::kRoundRobin);
  const auto device_list = manager.devices();
  // Grouped or not, round-robin strictly alternates by sequence number.
  const io::ScratchFile a =
      manager.NewFile("x", io::Placement::InGroup(manager.NextGroupId(), 0));
  const io::ScratchFile b =
      manager.NewFile("x", io::Placement::InGroup(manager.NextGroupId(), 0));
  const io::ScratchFile c = manager.NewFile("x", io::Placement::Ungrouped());
  EXPECT_EQ(a.device, device_list[0]);
  EXPECT_EQ(b.device, device_list[1]);
  EXPECT_EQ(c.device, device_list[0]);
  // Names carry the global sequence, exactly like NewPath.
  EXPECT_NE(a.path.find("/0_x"), std::string::npos) << a.path;
  EXPECT_NE(b.path.find("/1_x"), std::string::npos) << b.path;
  EXPECT_NE(c.path.find("/2_x"), std::string::npos) << c.path;
}

TEST(StorageConfigTest, ParseDeviceModelSpec) {
  io::DeviceModelSpec spec;
  EXPECT_EQ(io::ParseDeviceModelSpec("posix", &spec), "");
  EXPECT_EQ(spec.model, io::DeviceModel::kPosix);
  EXPECT_EQ(io::ParseDeviceModelSpec("mem", &spec), "");
  EXPECT_EQ(spec.model, io::DeviceModel::kMem);
  EXPECT_EQ(io::ParseDeviceModelSpec("throttled", &spec), "");
  EXPECT_EQ(spec.model, io::DeviceModel::kThrottled);
  EXPECT_EQ(io::ParseDeviceModelSpec("throttled:250", &spec), "");
  EXPECT_EQ(spec.throttle_latency_us, 250u);
  EXPECT_EQ(io::ParseDeviceModelSpec("throttled:250:512", &spec), "");
  EXPECT_EQ(spec.throttle_mb_per_sec, 512u);
  EXPECT_NE(io::ParseDeviceModelSpec("floppy", &spec), "");
  EXPECT_NE(io::ParseDeviceModelSpec("throttled:abc", &spec), "");
  EXPECT_NE(io::ParseDeviceModelSpec("throttled:1:2:3", &spec), "");
  // strtoull would silently negate/saturate these; the parser must not.
  EXPECT_NE(io::ParseDeviceModelSpec("throttled:-1", &spec), "");
  EXPECT_NE(io::ParseDeviceModelSpec("throttled:10:-5", &spec), "");
  EXPECT_NE(
      io::ParseDeviceModelSpec("throttled:99999999999999999999999", &spec),
      "");
  // In uint64 range but beyond the sanity bound: the *1000 ns
  // conversion would wrap to a tiny latency — must be rejected too.
  EXPECT_NE(io::ParseDeviceModelSpec("throttled:18446744073709552", &spec),
            "");
  // Trailing/doubled ':' is a truncated value, not a default request.
  EXPECT_NE(io::ParseDeviceModelSpec("throttled:", &spec), "");
  EXPECT_NE(io::ParseDeviceModelSpec("throttled:100:", &spec), "");
  EXPECT_NE(io::ParseDeviceModelSpec("throttled::", &spec), "");

  EXPECT_EQ(io::ParseDeviceModelSpec("faulty", &spec), "");
  EXPECT_EQ(spec.model, io::DeviceModel::kFaulty);
  EXPECT_EQ(spec.fault.read_fault_rate, 0.0);
  EXPECT_EQ(io::ParseDeviceModelSpec(
                "faulty:seed=9,rate=0.001,short=0.0005,corrupt=0.25,"
                "wfail_after=100,rfail_after=200,tag=sortrun,device=1,"
                "inner=mem",
                &spec),
            "");
  EXPECT_EQ(spec.fault.seed, 9u);
  EXPECT_EQ(spec.fault.read_fault_rate, 0.001);
  EXPECT_EQ(spec.fault.write_fault_rate, 0.001);
  EXPECT_EQ(spec.fault.short_rate, 0.0005);
  EXPECT_EQ(spec.fault.corrupt_rate, 0.25);
  EXPECT_EQ(spec.fault.fail_writes_after, 100u);
  EXPECT_EQ(spec.fault.fail_reads_after, 200u);
  EXPECT_EQ(spec.fault.path_tag, "sortrun");
  EXPECT_EQ(spec.fault.device_index, 1);
  EXPECT_EQ(spec.fault.inner, io::DeviceModel::kMem);
  // rate= sets both directions; the directional keys override one.
  EXPECT_EQ(
      io::ParseDeviceModelSpec("faulty:rate=0.5,write_rate=0.125", &spec),
      "");
  EXPECT_EQ(spec.fault.read_fault_rate, 0.5);
  EXPECT_EQ(spec.fault.write_fault_rate, 0.125);
  EXPECT_NE(io::ParseDeviceModelSpec("faulty:bogus=1", &spec), "");
  EXPECT_NE(io::ParseDeviceModelSpec("faulty:rate=1.5", &spec), "");
  EXPECT_NE(io::ParseDeviceModelSpec("faulty:rate=-0.1", &spec), "");
  EXPECT_NE(io::ParseDeviceModelSpec("faulty:rate=nan", &spec), "");
  EXPECT_NE(io::ParseDeviceModelSpec("faulty:seed=", &spec), "");
  EXPECT_NE(io::ParseDeviceModelSpec("faulty:seed=-3", &spec), "");
  EXPECT_NE(io::ParseDeviceModelSpec("faulty:inner=floppy", &spec), "");
  EXPECT_NE(io::ParseDeviceModelSpec("faulty:", &spec), "");

  io::PlacementPolicy policy = io::PlacementPolicy::kRoundRobin;
  EXPECT_EQ(io::ParsePlacementSpec("spread", &policy), "");
  EXPECT_EQ(policy, io::PlacementPolicy::kSpreadGroup);
  EXPECT_EQ(io::ParsePlacementSpec("striped", &policy), "");
  EXPECT_EQ(policy, io::PlacementPolicy::kStriped);
  EXPECT_EQ(io::ParsePlacementSpec("rr", &policy), "");
  EXPECT_EQ(policy, io::PlacementPolicy::kRoundRobin);
  EXPECT_NE(io::ParsePlacementSpec("zigzag", &policy), "");
}

TEST(StorageConfigTest, ValidateScratchParentsNamesTheBadEntry) {
  namespace fs = std::filesystem;
  const std::string good =
      (fs::temp_directory_path() / "extscc_storage_test_good").string();
  fs::create_directories(good);
  EXPECT_EQ(io::ValidateScratchParents({good}), "");
  const std::string missing =
      (fs::temp_directory_path() / "extscc_storage_test_missing").string();
  const std::string error = io::ValidateScratchParents({good, missing});
  EXPECT_NE(error.find(missing), std::string::npos)
      << "error must name the bad directory: " << error;
  // The config-level check applies the device-model policy: mem devices
  // have no on-disk parent to validate, file-backed models do.
  io::DeviceModelSpec mem_spec;
  ASSERT_EQ(io::ParseDeviceModelSpec("mem", &mem_spec), "");
  EXPECT_EQ(io::ValidateScratchConfig(mem_spec, {missing}), "");
  EXPECT_NE(io::ValidateScratchConfig(io::DeviceModelSpec{}, {missing}), "");
  fs::remove_all(good);
}

// Regression for the busy-until throttle model: operations on TWO
// throttled devices issued from two threads must overlap (sustaining
// ~2x one device's bandwidth), while concurrent operations on ONE
// device must serialize in simulated time. Wall-clock margins are kept
// generous so a loaded CI machine cannot flip the verdict: the
// serialized phase has a hard LOWER bound (sleep_until guarantees it),
// and the parallel phase is allowed up to ~1.5x its ideal time.
TEST(ThrottledDeviceTest, DistinctDevicesThrottleIndependently) {
  constexpr std::uint64_t kLatencyUs = 10'000;  // 10 ms per op
  constexpr int kOpsPerThread = 8;              // 80 ms per device
  const auto make_device = [&](const std::string& name) {
    return std::make_unique<io::ThrottledDevice>(
        name, std::make_unique<io::MemDevice>(name + "_mem"), kLatencyUs,
        /*mb_per_sec=*/0);
  };
  const auto hammer = [&](io::StorageDevice* device, const std::string& path) {
    auto file = OpenOrDie(device, path, io::OpenMode::kRead);
    std::vector<char> buf(512);
    for (int i = 0; i < kOpsPerThread; ++i) {
      ASSERT_TRUE(file->ReadAt(0, buf.data(), 512).ok());
    }
  };
  const auto prepare = [&](io::StorageDevice* device, const std::string& path) {
    std::vector<char> bytes(512, 'x');
    ASSERT_TRUE(OpenOrDie(device, path, io::OpenMode::kTruncateWrite)
                    ->WriteAt(0, bytes.data(), bytes.size())
                    .ok());
  };

  // Phase 1: two threads on ONE device — ops serialize in simulated
  // time, so the wall is bounded below by (2 * kOpsPerThread) ops.
  auto same = make_device("same");
  prepare(same.get(), "f");
  util::Timer same_timer;
  {
    std::thread a([&] { hammer(same.get(), "f"); });
    std::thread b([&] { hammer(same.get(), "f"); });
    a.join();
    b.join();
  }
  const double same_wall = same_timer.ElapsedSeconds();
  const double total_cost =
      2.0 * kOpsPerThread * static_cast<double>(kLatencyUs) / 1e6;
  EXPECT_GE(same_wall, 0.9 * total_cost)
      << "one device must serialize concurrent ops";

  // Phase 2: two threads, each on its OWN device — the sleeps overlap,
  // so two devices sustain ~2x one device's bandwidth. The bound is
  // against the MEASURED serialized wall (same machine, same load) and
  // the phase retries, so a CPU-starved CI runner cannot flip the
  // verdict: a genuine shared-lock serialization bug makes every
  // attempt take ~same_wall, never below the threshold.
  double distinct_wall = same_wall;
  for (int attempt = 0; attempt < 3 && distinct_wall >= 0.75 * same_wall;
       ++attempt) {
    auto dev_a = make_device("a");
    auto dev_b = make_device("b");
    prepare(dev_a.get(), "f");
    prepare(dev_b.get(), "f");
    util::Timer distinct_timer;
    {
      std::thread a([&] { hammer(dev_a.get(), "f"); });
      std::thread b([&] { hammer(dev_b.get(), "f"); });
      a.join();
      b.join();
    }
    distinct_wall = distinct_timer.ElapsedSeconds();
  }
  EXPECT_LT(distinct_wall, 0.75 * same_wall)
      << "distinct devices must throttle independently (got "
      << distinct_wall << "s vs " << same_wall
      << "s serialized; sleeping under a shared lock would serialize them)";
}

// A consumer that computes longer than the per-op cost between ops must
// still experience the configured rate: sub-quantum costs are deferred,
// not forgiven, across idle re-anchors of the device timeline.
TEST(ThrottledDeviceTest, SlowConsumerStillPaysSubQuantumCosts) {
  constexpr std::uint64_t kLatencyUs = 800;  // < 1 ms sleep chunk
  constexpr int kOps = 6;
  constexpr auto kThinkTime = std::chrono::milliseconds(2);
  auto device = std::make_unique<io::ThrottledDevice>(
      "slow", std::make_unique<io::MemDevice>("slow_mem"), kLatencyUs,
      /*mb_per_sec=*/0);
  {
    std::vector<char> bytes(64, 'x');
    ASSERT_TRUE(OpenOrDie(device.get(), "f", io::OpenMode::kTruncateWrite)
                    ->WriteAt(0, bytes.data(), bytes.size())
                    .ok());
  }
  auto file = OpenOrDie(device.get(), "f", io::OpenMode::kRead);
  std::vector<char> buf(64);
  util::Timer timer;
  for (int i = 0; i < kOps; ++i) {
    ASSERT_TRUE(file->ReadAt(0, buf.data(), 64).ok());
    std::this_thread::sleep_for(kThinkTime);  // consumer "compute"
  }
  const double wall = timer.ElapsedSeconds();
  const double floor =
      kOps * (kLatencyUs / 1e6) +
      kOps * std::chrono::duration<double>(kThinkTime).count();
  EXPECT_GE(wall, 0.9 * floor)
      << "sub-quantum op costs were forgiven instead of deferred";
}

// ---- striped placement -----------------------------------------------

// Manager-level contract: under kStriped a new scratch file is a
// virtual path on the composite StripedDevice whose stripe spans every
// AVAILABLE device in configuration order; quarantined members are
// excluded from NEW stripes, and when fewer than two devices remain the
// manager falls back to round-robin instead of building a 1-wide
// "stripe".
TEST(StripedPlacementTest, NewFileStripesOverAvailableDevices) {
  std::vector<std::unique_ptr<io::StorageDevice>> devices;
  for (int i = 0; i < 4; ++i) {
    devices.push_back(
        std::make_unique<io::MemDevice>("m" + std::to_string(i)));
  }
  io::TempFileManager manager(std::move(devices),
                              io::PlacementPolicy::kStriped);
  manager.ConfigureStriping(/*block_size=*/1024, /*checksum_blocks=*/false);
  const auto device_list = manager.devices();

  const io::ScratchFile wide = manager.NewFile("w", io::Placement::Ungrouped());
  EXPECT_EQ(wide.path.rfind("striped://", 0), 0u) << wide.path;
  EXPECT_EQ(manager.DeviceForPath(wide.path), wide.device);
  // The striped composite is not one of the physical scratch devices.
  for (const io::StorageDevice* device : device_list) {
    EXPECT_NE(wide.device, device);
  }
  {
    std::unique_ptr<io::StorageFile> handle;
    ASSERT_TRUE(wide.device
                    ->Open(wide.path, io::OpenMode::kTruncateWrite, &handle)
                    .ok());
    const auto* stripe = handle->stripe_devices();
    ASSERT_NE(stripe, nullptr);
    ASSERT_EQ(stripe->size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ((*stripe)[i], device_list[i]);
  }

  // A quarantined member must not appear in new stripes.
  manager.Quarantine(device_list[1]);
  const io::ScratchFile narrowed =
      manager.NewFile("n", io::Placement::Ungrouped());
  {
    std::unique_ptr<io::StorageFile> handle;
    ASSERT_TRUE(
        narrowed.device
            ->Open(narrowed.path, io::OpenMode::kTruncateWrite, &handle)
            .ok());
    const auto* stripe = handle->stripe_devices();
    ASSERT_NE(stripe, nullptr);
    ASSERT_EQ(stripe->size(), 3u);
    for (const io::StorageDevice* member : *stripe) {
      EXPECT_NE(member, device_list[1]) << "quarantined member in new stripe";
    }
  }

  // Down to one available device: fall back to round-robin placement on
  // what is left — never a 1-wide stripe.
  manager.Quarantine(device_list[0]);
  manager.Quarantine(device_list[2]);
  ASSERT_EQ(manager.num_available_devices(), 1u);
  const io::ScratchFile fallback =
      manager.NewFile("f", io::Placement::Ungrouped());
  EXPECT_EQ(fallback.device, device_list[3]);
  EXPECT_EQ(fallback.path.rfind("striped://", 0), std::string::npos)
      << fallback.path;
}

// One device from the start: kStriped never engages (no composite is
// even built) and placement degrades to plain round-robin.
TEST(StripedPlacementTest, SingleDeviceFallsBackToRoundRobin) {
  std::vector<std::unique_ptr<io::StorageDevice>> devices;
  devices.push_back(std::make_unique<io::MemDevice>("only"));
  io::TempFileManager manager(std::move(devices),
                              io::PlacementPolicy::kStriped);
  manager.ConfigureStriping(1024, false);
  const io::ScratchFile file = manager.NewFile("x", io::Placement::Ungrouped());
  EXPECT_EQ(file.device, manager.devices()[0]);
  EXPECT_EQ(file.path.rfind("striped://", 0), std::string::npos) << file.path;
}

// Mapping identity: bytes written through a striped scratch file read
// back byte-identically, the blocks land on several member devices, and
// the per-device rows (which list only the physical members — the
// composite's own stats stay zero) still sum exactly to the aggregate.
TEST(StripedPlacementTest, WriteReadBackByteIdenticalAndRowsSum) {
  auto ctx = MakeContext(io::DeviceModel::kMem, 3,
                         io::PlacementPolicy::kStriped);
  const auto values = RandomValues(20'000, 31);
  const std::string path = ctx->NewTempPath("striped_rt");
  io::WriteAllRecords(ctx.get(), path, values);
  EXPECT_EQ(io::ReadAllRecords<std::uint64_t>(ctx.get(), path), values);
  ExpectDeviceStatsSumToAggregate(*ctx);
  std::size_t active = 0;
  for (const auto& row : ctx->DeviceStats()) {
    if (row.stats.total_ios() > 0) ++active;
  }
  EXPECT_GE(active, 2u) << "a striped file must touch several devices";
  EXPECT_LT(ctx->max_per_device_ios(), ctx->stats().total_ios());
  // Truncating reopen resets the contents across all parts.
  io::WriteAllRecords(ctx.get(), path, std::vector<std::uint64_t>{1, 2, 3});
  EXPECT_EQ(io::ReadAllRecords<std::uint64_t>(ctx.get(), path),
            (std::vector<std::uint64_t>{1, 2, 3}));
  ctx->temp_files().Remove(path);
}

// Striping composes with block checksums: the physical stride grows by
// the CRC32 trailer on both layers (StripedDevice::Open mirrors
// BlockFile's stride rule), so a checksummed sort over striped scratch
// still round-trips byte-identically.
TEST(StripedPlacementTest, ChecksummedStripedSortRoundTrips) {
  io::IoContextOptions options;
  options.block_size = 1024;
  options.memory_bytes = 16 << 10;
  options.device_model.model = io::DeviceModel::kMem;
  options.scratch_placement = io::PlacementPolicy::kStriped;
  options.checksum_blocks = true;
  for (int i = 0; i < 3; ++i) options.scratch_dirs.push_back("");
  auto ctx = std::make_unique<io::IoContext>(options);
  auto values = RandomValues(30'000, 37);
  const std::string in = ctx->NewTempPath("in");
  const std::string out = ctx->NewTempPath("out");
  io::WriteAllRecords(ctx.get(), in, values);
  extsort::SortFile<std::uint64_t, U64Less>(ctx.get(), in, out, U64Less());
  std::sort(values.begin(), values.end());
  EXPECT_EQ(io::ReadAllRecords<std::uint64_t>(ctx.get(), out), values);
  ExpectDeviceStatsSumToAggregate(*ctx);
  EXPECT_FALSE(ctx->has_io_error()) << ctx->io_error().ToString();
}

// ---- striped bandwidth regressions -----------------------------------

// Throttled-device context for the bandwidth regressions: real latency,
// device-parallel I/O on, placement under test. Bypasses the test-env
// overrides — placement and geometry ARE the subject here.
std::unique_ptr<io::IoContext> MakeThrottledContext(
    std::size_t num_devices, io::PlacementPolicy placement,
    std::uint64_t latency_us) {
  io::IoContextOptions options;
  options.block_size = 1024;
  options.memory_bytes = 16 << 10;
  options.device_model.model = io::DeviceModel::kThrottled;
  options.device_model.throttle_latency_us = latency_us;
  options.device_model.throttle_mb_per_sec = 0;
  options.scratch_placement = placement;
  options.io_threads = 2;
  options.prefetch_depth = 4;
  for (std::size_t i = 0; i < num_devices; ++i) {
    options.scratch_dirs.push_back("");
  }
  if (num_devices <= 1) options.scratch_dirs.clear();
  return std::make_unique<io::IoContext>(options);
}

struct ThrottledPhase {
  double wall = 0;
  io::IoStats delta;            // aggregate delta over the phase
  std::uint64_t dev_total = 0;  // per-device total_ios summed (delta)
  std::uint64_t dev_max = 0;    // busiest device (delta)
};

// The tentpole's headline property: ONE long sequential scan on two
// throttled devices under kStriped runs at >= 1.8x one device's
// bandwidth, with identical counted block I/Os and the per-device
// critical path at ~total/2. The serialized baseline has a hard lower
// bound (the busy-until clock guarantees it) and the striped phase
// retries, so a loaded CI machine cannot flip the verdict.
TEST(ThrottledStripedTest, SingleStreamScanOnTwoDevicesDoublesBandwidth) {
  constexpr std::uint64_t kLatencyUs = 4'000;  // 4 ms per block op
  constexpr std::size_t kBlocks = 40;
  const auto values =
      RandomValues(kBlocks * (1024 / sizeof(std::uint64_t)), 41);
  const auto scan = [&](std::size_t num_devices,
                        io::PlacementPolicy placement) {
    auto ctx = MakeThrottledContext(num_devices, placement, kLatencyUs);
    const std::string path = ctx->NewTempPath("scan");
    io::WriteAllRecords(ctx.get(), path, values);
    const io::IoStats before = ctx->stats();
    const auto dev_before = ctx->DeviceStats();
    util::Timer timer;
    const auto got = io::ReadAllRecords<std::uint64_t>(ctx.get(), path);
    ThrottledPhase phase;
    phase.wall = timer.ElapsedSeconds();
    EXPECT_EQ(got, values);
    phase.delta = ctx->stats() - before;
    const auto dev_after = ctx->DeviceStats();
    for (std::size_t i = 0; i < dev_after.size(); ++i) {
      const std::uint64_t ios =
          (dev_after[i].stats - dev_before[i].stats).total_ios();
      phase.dev_total += ios;
      phase.dev_max = std::max(phase.dev_max, ios);
    }
    return phase;
  };

  const ThrottledPhase one = scan(1, io::PlacementPolicy::kRoundRobin);
  const double serial_floor = kBlocks * (kLatencyUs / 1e6);
  EXPECT_GE(one.wall, 0.9 * serial_floor)
      << "one throttled device must serialize the scan";

  // A loaded CI machine inflates BOTH walls (scheduler starvation is
  // additive), so each retry re-measures the pair and the verdict
  // compares the best striped draw against the worst serialized draw —
  // the latter is still bounded below by the device clock.
  ThrottledPhase striped = scan(2, io::PlacementPolicy::kStriped);
  double worst_one = one.wall;
  double best_striped = striped.wall;
  for (int attempt = 0; attempt < 4 && best_striped >= worst_one / 1.8;
       ++attempt) {
    worst_one =
        std::max(worst_one, scan(1, io::PlacementPolicy::kRoundRobin).wall);
    striped = scan(2, io::PlacementPolicy::kStriped);
    best_striped = std::min(best_striped, striped.wall);
  }
  EXPECT_LT(best_striped, worst_one / 1.8)
      << "a striped scan on 2 devices must draw ~2x one device's bandwidth";
  // Striping moves blocks between devices, never changes their count.
  EXPECT_EQ(one.delta.total_reads(), striped.delta.total_reads());
  EXPECT_EQ(one.delta.bytes_read, striped.delta.bytes_read);
  // The scan's blocks split ~evenly: the busiest device carries about
  // half the phase's I/Os (small slack for odd parity).
  EXPECT_LE(striped.dev_max, striped.dev_total / 2 + 2)
      << "striped scan must balance I/Os across both devices";
}

// The merge-side twin: a fan-in-2 final merge (fused drain, the SortInto
// shape) over two striped throttled devices runs at >= 1.8x the
// one-device wall with identical counted block I/Os — both input runs
// stripe over both devices, so both workers feed the loser tree
// concurrently.
TEST(ThrottledStripedTest, FanInTwoFinalMergeOnTwoDevicesDoublesBandwidth) {
  // 8 ms per block op: the merge's per-block hand-off overhead is a
  // smaller fraction of the simulated time than at 4 ms, which keeps
  // the 1.8x bound honest on a loaded machine.
  constexpr std::uint64_t kLatencyUs = 8'000;
  constexpr std::size_t kRunBlocks = 16;  // per run
  const std::size_t per_run = kRunBlocks * (1024 / sizeof(std::uint64_t));
  auto run_a = RandomValues(per_run, 43);
  auto run_b = RandomValues(per_run, 47);
  std::sort(run_a.begin(), run_a.end());
  std::sort(run_b.begin(), run_b.end());
  std::vector<std::uint64_t> expected;
  expected.reserve(2 * per_run);
  std::merge(run_a.begin(), run_a.end(), run_b.begin(), run_b.end(),
             std::back_inserter(expected));

  const auto merge = [&](std::size_t num_devices,
                         io::PlacementPolicy placement) {
    auto ctx = MakeThrottledContext(num_devices, placement, kLatencyUs);
    const std::string path_a = ctx->NewTempPath("runa");
    const std::string path_b = ctx->NewTempPath("runb");
    io::WriteAllRecords(ctx.get(), path_a, run_a);
    io::WriteAllRecords(ctx.get(), path_b, run_b);
    const io::IoStats before = ctx->stats();
    const auto dev_before = ctx->DeviceStats();
    util::Timer timer;
    std::vector<std::unique_ptr<io::PeekableReader<std::uint64_t>>> inputs;
    inputs.push_back(std::make_unique<io::PeekableReader<std::uint64_t>>(
        ctx.get(), path_a));
    inputs.push_back(std::make_unique<io::PeekableReader<std::uint64_t>>(
        ctx.get(), path_b));
    extsort::internal::LoserTree<std::uint64_t, U64Less> tree(
        std::move(inputs), U64Less());
    std::vector<std::uint64_t> merged;
    merged.reserve(expected.size());
    auto sink = extsort::MakeCallbackSink<std::uint64_t>(
        [&merged](const std::uint64_t& v) { merged.push_back(v); });
    extsort::internal::DrainMerge(&tree, &sink, U64Less(), /*dedup=*/false);
    ThrottledPhase phase;
    phase.wall = timer.ElapsedSeconds();
    EXPECT_EQ(merged, expected);
    phase.delta = ctx->stats() - before;
    const auto dev_after = ctx->DeviceStats();
    for (std::size_t i = 0; i < dev_after.size(); ++i) {
      const std::uint64_t ios =
          (dev_after[i].stats - dev_before[i].stats).total_ios();
      phase.dev_total += ios;
      phase.dev_max = std::max(phase.dev_max, ios);
    }
    return phase;
  };

  const ThrottledPhase one = merge(1, io::PlacementPolicy::kRoundRobin);
  const double serial_floor = 2.0 * kRunBlocks * (kLatencyUs / 1e6);
  EXPECT_GE(one.wall, 0.9 * serial_floor)
      << "one throttled device must serialize the merge reads";

  // Same paired-retry pattern as the scan test: per-block hand-off
  // overhead under CI load is additive on both sides, so re-measure
  // the pair and compare best striped against worst serialized.
  ThrottledPhase striped = merge(2, io::PlacementPolicy::kStriped);
  double worst_one = one.wall;
  double best_striped = striped.wall;
  for (int attempt = 0; attempt < 4 && best_striped >= worst_one / 1.8;
       ++attempt) {
    worst_one =
        std::max(worst_one, merge(1, io::PlacementPolicy::kRoundRobin).wall);
    striped = merge(2, io::PlacementPolicy::kStriped);
    best_striped = std::min(best_striped, striped.wall);
  }
  EXPECT_LT(best_striped, worst_one / 1.8)
      << "a striped fan-in-2 merge on 2 devices must halve the wall";
  EXPECT_EQ(one.delta.total_reads(), striped.delta.total_reads());
  EXPECT_EQ(one.delta.bytes_read, striped.delta.bytes_read);
  EXPECT_LE(striped.dev_max, striped.dev_total / 2 + 2)
      << "striped merge must balance I/Os across both devices";
}

}  // namespace
}  // namespace extscc
