// Equivalence and degradation tests for the overlapped sort→spill
// pipeline (run_pipeline.h, IoContextOptions::sort_threads): every
// sorter entry point must produce byte-identical sorted output with
// sort_threads=1 and sort_threads=0, spilled runs must never leak, and
// a budget too tight for a second buffer must degrade to the serial
// path rather than abort.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/ext_scc.h"
#include "extsort/external_sorter.h"
#include "gen/synthetic_generator.h"
#include "graph/graph_types.h"
#include "io/record_stream.h"
#include "test_util.h"
#include "util/random.h"

namespace extscc {
namespace {

using graph::Edge;
using graph::NodeId;

std::unique_ptr<io::IoContext> MakeContext(
    std::uint64_t memory, std::size_t block, std::size_t sort_threads,
    io::DeviceModel model = io::DeviceModel::kMem) {
  io::IoContextOptions options;
  options.block_size = block;
  options.memory_bytes = memory;
  options.device_model.model = model;
  // Env overrides (device model, scratch dirs) reach this suite too —
  // but sort_threads is this suite's subject, so the explicit parameter
  // wins over EXTSCC_TEST_SORT_THREADS.
  testing::ApplyTestEnvOptions(&options);
  options.sort_threads = sort_threads;
  return std::make_unique<io::IoContext>(options);
}

std::vector<Edge> RandomEdges(std::size_t n, std::uint64_t seed,
                              std::uint32_t range) {
  util::Rng rng(seed);
  std::vector<Edge> out(n);
  for (auto& e : out) {
    e.src = static_cast<NodeId>(rng.Uniform(range));
    e.dst = static_cast<NodeId>(rng.Uniform(range));
  }
  return out;
}

template <typename T>
void ExpectFilesByteIdentical(io::IoContext* a_ctx, const std::string& a,
                              io::IoContext* b_ctx, const std::string& b,
                              const char* label) {
  const auto va = io::ReadAllRecords<T>(a_ctx, a);
  const auto vb = io::ReadAllRecords<T>(b_ctx, b);
  ASSERT_EQ(va.size(), vb.size()) << label;
  for (std::size_t i = 0; i < va.size(); ++i) {
    ASSERT_EQ(std::memcmp(&va[i], &vb[i], sizeof(T)), 0)
        << label << ": first byte-difference at record " << i;
  }
}

TEST(RunPipelineTest, SortFileSerialVsThreadedByteIdentical) {
  // Randomized geometry sweep; every draw forces multi-run spills in at
  // least the serial engine.
  util::Rng rng(404);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t block = 512u << rng.Uniform(3);
    const std::uint64_t memory = (4 + rng.Uniform(28)) * block;
    const std::size_t count = 2'000 + rng.Uniform(40'000);
    const bool dedup = rng.Uniform(2) == 1;
    const auto edges = RandomEdges(count, rng.Next(), 1u << 12);

    auto serial_ctx = MakeContext(memory, block, 0);
    auto threaded_ctx = MakeContext(memory, block, 1);
    const std::string in_s = serial_ctx->NewTempPath("in");
    const std::string in_t = threaded_ctx->NewTempPath("in");
    io::WriteAllRecords(serial_ctx.get(), in_s, edges);
    io::WriteAllRecords(threaded_ctx.get(), in_t, edges);
    const std::string out_s = serial_ctx->NewTempPath("out");
    const std::string out_t = threaded_ctx->NewTempPath("out");
    const auto info_s = extsort::SortFile<Edge, graph::EdgeBySrc>(
        serial_ctx.get(), in_s, out_s, graph::EdgeBySrc(), dedup);
    const auto info_t = extsort::SortFile<Edge, graph::EdgeBySrc>(
        threaded_ctx.get(), in_t, out_t, graph::EdgeBySrc(), dedup);
    EXPECT_EQ(info_s.num_records, info_t.num_records);
    ExpectFilesByteIdentical<Edge>(serial_ctx.get(), out_s,
                                   threaded_ctx.get(), out_t,
                                   "SortFile serial vs threaded");
  }
}

TEST(RunPipelineTest, SortingWriterSerialVsThreadedByteIdentical) {
  util::Rng rng(405);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t block = 1024;
    const std::uint64_t memory = (4 + rng.Uniform(28)) * block;
    const std::size_t count = 2'000 + rng.Uniform(30'000);
    const bool dedup = rng.Uniform(2) == 1;
    const auto edges = RandomEdges(count, rng.Next(), 1u << 10);

    auto run = [&](std::size_t threads) {
      auto ctx = MakeContext(memory, block, threads);
      extsort::SortingWriter<Edge, graph::EdgeByDst> writer(
          ctx.get(), graph::EdgeByDst(), dedup);
      for (const auto& e : edges) writer.Add(e);
      const std::string out = ctx->NewTempPath("out");
      writer.FinishInto(out);
      return io::ReadAllRecords<Edge>(ctx.get(), out);
    };
    const auto serial = run(0);
    const auto threaded = run(1);
    ASSERT_EQ(serial.size(), threaded.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(std::memcmp(&serial[i], &threaded[i], sizeof(Edge)), 0)
          << "SortingWriter divergence at record " << i << " (trial "
          << trial << ")";
    }
  }
}

TEST(RunPipelineTest, SortIntoThreadedMatchesSerialSink) {
  const auto edges = RandomEdges(25'000, 99, 1u << 16);
  auto collect = [&](std::size_t threads) {
    auto ctx = MakeContext(24 << 10, 1024, threads);
    const std::string in = ctx->NewTempPath("in");
    io::WriteAllRecords(ctx.get(), in, edges);
    std::vector<Edge> got;
    auto sink = extsort::MakeCallbackSink<Edge>(
        [&](const Edge& e) { got.push_back(e); });
    extsort::SortInto<Edge>(ctx.get(), in, sink, graph::EdgeBySrc());
    return got;
  };
  const auto serial = collect(0);
  const auto threaded = collect(1);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i], threaded[i]) << "at " << i;
  }
}

TEST(RunPipelineTest, TightBudgetDegradesToSerialAndStaysCorrect) {
  // M = 2 blocks: after the add buffer's reservation nothing is left
  // for a second buffer, so the writer must fall back to serial spills
  // (same geometry) instead of aborting the Reserve.
  auto ctx = MakeContext(2 << 10, 1024, 1);
  auto values = RandomEdges(20'000, 17, 1u << 8);
  extsort::SortingWriter<Edge, graph::EdgeBySrc> writer(ctx.get(),
                                                        graph::EdgeBySrc());
  for (const auto& e : values) writer.Add(e);
  const std::string out = ctx->NewTempPath("out");
  writer.FinishInto(out);
  auto result = io::ReadAllRecords<Edge>(ctx.get(), out);
  std::stable_sort(values.begin(), values.end(), graph::EdgeBySrc());
  ASSERT_EQ(result.size(), values.size());
  for (std::size_t i = 0; i < result.size(); ++i) {
    ASSERT_EQ(result[i], values[i]) << "at " << i;
  }
}

TEST(RunPipelineTest, AbandonedWriterLeaksNoRuns) {
  namespace fs = std::filesystem;
  // Posix scratch: the leak check walks the session directories.
  auto ctx = MakeContext(8 << 10, 1024, 1, io::DeviceModel::kPosix);
  {
    extsort::SortingWriter<Edge, graph::EdgeBySrc> writer(
        ctx.get(), graph::EdgeBySrc());
    for (const auto& e : RandomEdges(20'000, 23, 1u << 8)) writer.Add(e);
    // Destroyed without FinishInto: spilled runs must be removed.
  }
  std::size_t files = 0;
  for (const auto& dir : ctx->temp_files().dirs()) {
    if (!fs::exists(dir)) continue;  // env override to a RAM device
    for (auto it = fs::directory_iterator(dir);
         it != fs::directory_iterator(); ++it) {
      // The owner-liveness marker (storage.h, ReapOrphanScratchRoots)
      // lives in every posix session root by design; it is not scratch.
      if (it->path().filename() == ".pid") continue;
      ++files;
    }
  }
  EXPECT_EQ(files, 0u) << "abandoned writer stranded scratch files";
}

TEST(RunPipelineTest, ThreadedIoCountsMatchSerialForSortingWriter) {
  // Equal-capacity double buffering preserves run geometry, so a
  // SortingWriter spills the same records to the same number of runs —
  // total block I/O must agree with the serial engine exactly.
  const auto edges = RandomEdges(30'000, 31, 1u << 10);
  auto io_count = [&](std::size_t threads) {
    auto ctx = MakeContext(16 << 10, 1024, threads);
    // Snapshot before the writer exists: while a threaded writer is
    // live its spill worker mutates the stats concurrently, so the
    // only race-free read points are outside the writer's lifetime.
    const auto before = ctx->stats();
    const std::string out = ctx->NewTempPath("out");
    {
      extsort::SortingWriter<Edge, graph::EdgeBySrc> writer(
          ctx.get(), graph::EdgeBySrc());
      for (const auto& e : edges) writer.Add(e);
      writer.FinishInto(out);
    }
    return (ctx->stats() - before).total_ios();
  };
  EXPECT_EQ(io_count(0), io_count(1));
}

TEST(RunPipelineTest, ExtSccEndToEndWithSortThreads) {
  // Whole-system smoke: a multi-level Ext-SCC solve with overlapped run
  // formation must still match the oracle partition. The suite's
  // designated Posix round trip: the rest runs on MemDevice scratch.
  auto ctx = MakeContext(96 << 10, 4096, 1, io::DeviceModel::kPosix);
  gen::SyntheticParams params;
  params.num_nodes = 4'000;
  params.avg_degree = 3.0;
  params.sccs = {{20, 40}};
  params.seed = 12;
  const auto g = gen::GenerateSynthetic(ctx.get(), params);
  const std::string scc_path = ctx->NewTempPath("scc");
  auto result = core::RunExtScc(ctx.get(), g, scc_path,
                                core::ExtSccOptions::Optimized());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  testing::ExpectSccFileMatchesOracle(ctx.get(), g, scc_path,
                                      "ext-scc sort_threads=1");
}

}  // namespace
}  // namespace extscc
