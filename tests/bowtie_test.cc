#include "app/bowtie.h"

#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "core/ext_scc.h"
#include "gen/classic_graphs.h"
#include "gen/webgraph_generator.h"
#include "graph/digraph.h"
#include "graph/disk_graph.h"
#include "io/record_stream.h"
#include "test_util.h"

namespace extscc {
namespace {

using app::BowtieDecompose;
using app::BowtieRegion;
using app::BowtieResult;
using graph::Edge;
using graph::NodeId;
using testing::MakeTestContext;

// Runs Ext-SCC then the decomposition; returns (result, node -> region).
std::pair<BowtieResult, std::map<NodeId, BowtieRegion>> DecomposeGraph(
    io::IoContext* ctx, const graph::DiskGraph& g) {
  const std::string scc_path = ctx->NewTempPath("scc");
  EXPECT_TRUE(core::RunExtScc(ctx, g, scc_path,
                              core::ExtSccOptions::Optimized())
                  .ok());
  auto result = BowtieDecompose(ctx, g, scc_path);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  std::map<NodeId, BowtieRegion> regions;
  io::RecordReader<graph::SccEntry> reader(ctx, result.value().region_path);
  graph::SccEntry entry;
  while (reader.Next(&entry)) {
    regions[entry.node] = static_cast<BowtieRegion>(entry.scc);
  }
  return {result.value(), regions};
}

TEST(BowtieTest, HandBuiltBowtie) {
  // in1 -> in2 -> {core triangle 10,11,12} -> out1 -> out2, plus island.
  const std::vector<Edge> edges{{1, 2},   {2, 10},  {10, 11}, {11, 12},
                                {12, 10}, {12, 20}, {20, 21}};
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), edges, /*extra=*/{99});
  const auto [result, regions] = DecomposeGraph(ctx.get(), g);
  EXPECT_EQ(result.core_size, 3u);
  EXPECT_EQ(result.in_size, 2u);
  EXPECT_EQ(result.out_size, 2u);
  EXPECT_EQ(result.other_size, 1u);
  EXPECT_EQ(regions.at(10), BowtieRegion::kCore);
  EXPECT_EQ(regions.at(1), BowtieRegion::kIn);
  EXPECT_EQ(regions.at(2), BowtieRegion::kIn);
  EXPECT_EQ(regions.at(20), BowtieRegion::kOut);
  EXPECT_EQ(regions.at(21), BowtieRegion::kOut);
  EXPECT_EQ(regions.at(99), BowtieRegion::kOther);
}

TEST(BowtieTest, TendrilOffInIsOther) {
  // in -> core(2-cycle); tendril hangs off the IN node but never reaches
  // the core: Broder's "tendril", classified OTHER.
  const std::vector<Edge> edges{{1, 10}, {10, 11}, {11, 10}, {1, 50}};
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), edges);
  const auto [result, regions] = DecomposeGraph(ctx.get(), g);
  EXPECT_EQ(regions.at(1), BowtieRegion::kIn);
  EXPECT_EQ(regions.at(50), BowtieRegion::kOther);
  EXPECT_EQ(result.other_size, 1u);
}

TEST(BowtieTest, WholeGraphOneScc) {
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), gen::CycleEdges(12));
  const auto [result, regions] = DecomposeGraph(ctx.get(), g);
  EXPECT_EQ(result.core_size, 12u);
  EXPECT_EQ(result.in_size + result.out_size + result.other_size, 0u);
}

TEST(BowtieTest, PathCoreIsSomeSingleton) {
  // All SCCs are singletons: the "largest" is one of them; everything
  // before it is IN, after it OUT (a path is all one weak component).
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), gen::PathEdges(9));
  const auto [result, regions] = DecomposeGraph(ctx.get(), g);
  EXPECT_EQ(result.core_size, 1u);
  EXPECT_EQ(result.core_size + result.in_size + result.out_size +
                result.other_size,
            9u);
  EXPECT_EQ(result.other_size, 0u);
}

TEST(BowtieTest, EmptyGraphRejected) {
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), {});
  const std::string scc_path = ctx->NewTempPath("scc");
  ASSERT_TRUE(core::RunExtScc(ctx.get(), g, scc_path,
                              core::ExtSccOptions::Basic())
                  .ok());
  auto result = BowtieDecompose(ctx.get(), g, scc_path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(BowtieTest, WebGraphHasBowtieStructure) {
  // The UK2007 stand-in generator is built to produce a bow-tie: a giant
  // core plus non-trivial periphery (DESIGN.md §5).
  auto ctx = MakeTestContext(/*memory_bytes=*/8 << 20);
  gen::WebGraphParams params;
  params.num_nodes = 4000;
  params.seed = 21;
  const auto g = gen::GenerateWebGraph(ctx.get(), params);
  const auto [result, regions] = DecomposeGraph(ctx.get(), g);
  EXPECT_GT(result.core_size, g.num_nodes / 10) << "giant core expected";
  EXPECT_GT(result.in_size + result.out_size + result.other_size, 0u)
      << "periphery expected";
  EXPECT_EQ(result.core_size + result.in_size + result.out_size +
                result.other_size,
            g.num_nodes);
}

TEST(BowtieTest, RegionNames) {
  EXPECT_STREQ(app::BowtieRegionName(BowtieRegion::kCore), "CORE");
  EXPECT_STREQ(app::BowtieRegionName(BowtieRegion::kIn), "IN");
  EXPECT_STREQ(app::BowtieRegionName(BowtieRegion::kOut), "OUT");
  EXPECT_STREQ(app::BowtieRegionName(BowtieRegion::kOther), "OTHER");
}

// Property sweep: regions must agree with in-memory BFS reachability
// from/to the largest SCC.
class BowtieSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BowtieSweep, MatchesBfsOracle) {
  const auto [edges_count, seed] = GetParam();
  const auto edges = gen::RandomDigraphEdges(120, edges_count, seed);
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), edges);
  const auto [result, regions] = DecomposeGraph(ctx.get(), g);

  const auto nodes = io::ReadAllRecords<NodeId>(ctx.get(), g.node_path);
  graph::Digraph mem(nodes, edges);
  // BFS closure helper over dense indices.
  auto closure = [&](const std::vector<bool>& seed_set, bool forward) {
    std::vector<bool> seen = seed_set;
    std::vector<std::size_t> stack;
    for (std::size_t v = 0; v < mem.num_nodes(); ++v) {
      if (seen[v]) stack.push_back(v);
    }
    while (!stack.empty()) {
      const auto v = stack.back();
      stack.pop_back();
      const auto nbrs = forward ? mem.out_neighbors(v) : mem.in_neighbors(v);
      for (const auto w : nbrs) {
        if (!seen[w]) {
          seen[w] = true;
          stack.push_back(w);
        }
      }
    }
    return seen;
  };
  std::vector<bool> core_set(mem.num_nodes(), false);
  for (const auto& [node, region] : regions) {
    if (region == BowtieRegion::kCore) {
      core_set[mem.index_of(node)] = true;
    }
  }
  const auto fwd = closure(core_set, /*forward=*/true);
  const auto bwd = closure(core_set, /*forward=*/false);
  for (const auto& [node, region] : regions) {
    const auto idx = mem.index_of(node);
    BowtieRegion expected;
    if (core_set[idx]) {
      expected = BowtieRegion::kCore;
    } else if (bwd[idx]) {
      expected = BowtieRegion::kIn;
    } else if (fwd[idx]) {
      expected = BowtieRegion::kOut;
    } else {
      expected = BowtieRegion::kOther;
    }
    ASSERT_EQ(region, expected) << "node " << node;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, BowtieSweep,
                         ::testing::Combine(::testing::Values(80, 200, 500),
                                            ::testing::Values(1, 2, 3, 4)));

}  // namespace
}  // namespace extscc
