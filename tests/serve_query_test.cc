// Batched query engine + service surface: 10k mixed queries against
// the in-memory oracle, sweep-I/O sublinearity in batch count,
// per-device accounting of artifact reads, concurrent readers identical
// to serial, and the line protocol round trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gen/classic_graphs.h"
#include "graph/digraph.h"
#include "graph/disk_graph.h"
#include "graph/graph_types.h"
#include "io/io_context.h"
#include "serve/artifact.h"
#include "serve/artifact_stage.h"
#include "serve/index_builder.h"
#include "serve/query_engine.h"
#include "serve/service.h"
#include "test_util.h"
#include "util/random.h"
#include "util/status.h"

namespace extscc {
namespace {

namespace fs = std::filesystem;
using graph::Edge;
using graph::NodeId;
using serve::ArtifactReader;
using serve::Query;
using serve::QueryAnswer;
using serve::QueryBatchStats;
using serve::QueryType;
using testing::MakeTestContext;

// A built artifact plus every oracle the answers are checked against.
struct ServeFixture {
  std::unique_ptr<io::IoContext> context;
  std::string artifact_path;
  std::optional<ArtifactReader> reader;
  std::vector<Edge> edges;
  graph::Digraph digraph{std::vector<Edge>{}};  // reachability oracle
  scc::SccResult oracle{{}};                    // partition oracle
  bool on_base_device = false;

  serve::QueryEngine engine() const { return serve::QueryEngine(&*reader); }
};

// Builds over a random digraph. `on_base_device` places the artifact
// outside the scratch session roots, so its reads are accounted to the
// context's default ("base") PosixDevice like any user-facing file.
ServeFixture MakeFixture(std::uint32_t nodes, std::uint64_t num_edges,
                         std::uint64_t seed, bool on_base_device = false) {
  ServeFixture fx;
  fx.context = MakeTestContext(4 << 20);
  fx.edges = gen::RandomDigraphEdges(nodes, num_edges, seed);
  fx.digraph = graph::Digraph(fx.edges);
  fx.oracle = testing::Oracle(fx.edges);
  const auto g = graph::MakeDiskGraph(fx.context.get(), fx.edges);
  fx.on_base_device = on_base_device;
  fx.artifact_path =
      on_base_device
          ? (fs::path(::testing::TempDir()) /
             ("extscc_serve_art_" + std::to_string(seed) + ".bin"))
                .string()
          : fx.context->NewTempPath("artifact");
  if (on_base_device) fs::remove(fx.artifact_path);
  auto built =
      serve::BuildArtifact(fx.context.get(), g, fx.artifact_path, {});
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  auto opened = ArtifactReader::Open(fx.context.get(), fx.artifact_path);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  fx.reader.emplace(std::move(opened).value());
  return fx;
}

void CleanupFixture(const ServeFixture& fx) {
  if (fx.on_base_device) fs::remove(fx.artifact_path);
}

// Mixed random queries, including ids past the node range (unknown).
std::vector<Query> RandomQueries(std::size_t n, std::uint32_t max_node,
                                 std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Query> queries;
  queries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Query q;
    const std::uint64_t kind = rng.Uniform(3);
    q.type = kind == 0 ? QueryType::kSameScc
             : kind == 1 ? QueryType::kReachable
                         : QueryType::kSccStat;
    // ~5% of endpoints fall outside the graph.
    q.u = static_cast<NodeId>(rng.Uniform(max_node + max_node / 20 + 1));
    q.v = static_cast<NodeId>(rng.Uniform(max_node + max_node / 20 + 1));
    queries.push_back(q);
  }
  return queries;
}

void ExpectAnswersMatchOracle(const ServeFixture& fx,
                              const std::vector<Query>& queries,
                              const std::vector<QueryAnswer>& answers) {
  ASSERT_EQ(answers.size(), queries.size());
  const auto sizes = fx.oracle.ComponentSizes();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Query& q = queries[i];
    const QueryAnswer& a = answers[i];
    const bool u_known = fx.oracle.Contains(q.u);
    const bool v_known = fx.oracle.Contains(q.v);
    switch (q.type) {
      case QueryType::kSccStat:
        ASSERT_EQ(a.known, u_known) << "stat " << q.u;
        if (a.known) {
          ASSERT_EQ(a.scc_size, sizes.at(fx.oracle.LabelOf(q.u)))
              << "stat " << q.u;
        }
        break;
      case QueryType::kSameScc:
        ASSERT_EQ(a.known, u_known && v_known)
            << "same " << q.u << " " << q.v;
        if (a.known) {
          ASSERT_EQ(a.result,
                    fx.oracle.LabelOf(q.u) == fx.oracle.LabelOf(q.v))
              << "same " << q.u << " " << q.v;
        }
        break;
      case QueryType::kReachable:
        ASSERT_EQ(a.known, u_known && v_known)
            << "reach " << q.u << " " << q.v;
        if (a.known) {
          ASSERT_EQ(a.result, testing::OracleReach(fx.digraph, q.u, q.v))
              << "reach " << q.u << " " << q.v;
        }
        break;
    }
  }
}

// ---- Correctness against the oracles ---------------------------------

TEST(ServeQueryTest, TenThousandMixedQueriesMatchOracle) {
  const ServeFixture fx = MakeFixture(1500, 6000, 7);
  const std::vector<Query> queries = RandomQueries(10000, 1500, 1234);
  std::vector<QueryAnswer> answers(queries.size());
  QueryBatchStats stats;
  ASSERT_TRUE(fx.engine()
                  .RunBatch(fx.context.get(), queries.data(), queries.size(),
                            answers.data(), &stats)
                  .ok());
  ExpectAnswersMatchOracle(fx, queries, answers);
  EXPECT_EQ(stats.queries, queries.size());
  EXPECT_GT(stats.unknown_nodes, 0u) << "the id overshoot must bite";
  EXPECT_GT(stats.labels.queries, 0u);
}

TEST(ServeQueryTest, EmptyBatchIsFree) {
  const ServeFixture fx = MakeFixture(100, 300, 3);
  QueryBatchStats stats;
  ASSERT_TRUE(
      fx.engine().RunBatch(fx.context.get(), nullptr, 0, nullptr, &stats).ok());
  EXPECT_EQ(stats.queries, 0u);
  EXPECT_EQ(stats.swept_blocks, 0u);
}

// ---- Sublinearity ----------------------------------------------------

TEST(ServeQueryTest, BatchSweepIoIsSublinearInBatchCount) {
  const ServeFixture fx = MakeFixture(20000, 60000, 9);
  const auto& section = fx.reader->node_scc_section();
  const std::uint64_t section_blocks =
      (section.payload_bytes + fx.context->block_size() - 1) /
      fx.context->block_size();
  ASSERT_GT(section_blocks, 20u) << "map must span many blocks";

  const std::vector<Query> queries = RandomQueries(2000, 20000, 77);
  const serve::QueryEngine engine = fx.engine();

  // One batch: the whole workload costs at most one sweep.
  QueryBatchStats one_batch;
  std::vector<QueryAnswer> answers(queries.size());
  ASSERT_TRUE(engine
                  .RunBatch(fx.context.get(), queries.data(), queries.size(),
                            answers.data(), &one_batch)
                  .ok());
  EXPECT_LE(one_batch.swept_blocks, section_blocks);
  EXPECT_GT(one_batch.swept_blocks, 0u);

  // The same workload one query at a time: each call pays its own
  // (early-exiting) sweep, so the total is many times larger.
  QueryBatchStats singles;
  for (const Query& q : queries) {
    QueryAnswer a;
    ASSERT_TRUE(engine.RunBatch(fx.context.get(), &q, 1, &a, &singles).ok());
  }
  EXPECT_GT(singles.swept_blocks, 20 * one_batch.swept_blocks)
      << "batching must amortize the sweep";

  // Intermediate batch sizes: total sweep I/O is bounded by
  // ceil(queries / batch) * section, and each batch individually by the
  // section — the documented model.
  for (const std::size_t batch : {100u, 500u}) {
    QueryBatchStats stats;
    for (std::size_t at = 0; at < queries.size(); at += batch) {
      const std::size_t n = std::min(batch, queries.size() - at);
      QueryBatchStats per_batch;
      ASSERT_TRUE(engine
                      .RunBatch(fx.context.get(), queries.data() + at, n,
                                answers.data() + at, &per_batch)
                      .ok());
      EXPECT_LE(per_batch.swept_blocks, section_blocks);
      stats += per_batch;
    }
    EXPECT_LE(stats.swept_blocks,
              ((queries.size() + batch - 1) / batch) * section_blocks);
    ExpectAnswersMatchOracle(fx, queries, answers);
  }
}

// ---- Accounting ------------------------------------------------------

TEST(ServeQueryTest, ArtifactReadsLandOnTheBaseDeviceRow) {
  const ServeFixture fx = MakeFixture(8000, 24000, 13, /*base device*/ true);
  ASSERT_EQ(fx.context->ResolveDevice(fx.artifact_path)->name(), "base");

  const std::vector<Query> queries = RandomQueries(500, 8000, 21);
  const auto before = fx.context->DeviceStats();
  const io::IoStats agg_before = fx.context->stats();
  std::vector<QueryAnswer> answers(queries.size());
  QueryBatchStats stats;
  ASSERT_TRUE(fx.engine()
                  .RunBatch(fx.context.get(), queries.data(), queries.size(),
                            answers.data(), &stats)
                  .ok());
  const auto after = fx.context->DeviceStats();
  const io::IoStats agg_after = fx.context->stats();

  ASSERT_FALSE(after.empty());
  ASSERT_EQ(after[0].name, "base");
  const io::IoStats base_delta = after[0].stats - before[0].stats;
  // The sweep's block reads are visible on the artifact's device...
  EXPECT_GE(base_delta.total_reads(), stats.swept_blocks);
  EXPECT_GT(stats.swept_blocks, 0u);
  // ...and the per-device rows account for exactly the aggregate.
  std::uint64_t row_sum = 0;
  for (std::size_t i = 0; i < after.size(); ++i) {
    row_sum += (after[i].stats - before[i].stats).total_ios();
  }
  EXPECT_EQ(row_sum, (agg_after - agg_before).total_ios());
  CleanupFixture(fx);
}

// ---- Concurrent readers ----------------------------------------------

TEST(ServeQueryTest, ConcurrentReadersMatchSerialAndSumToAggregate) {
  const ServeFixture fx = MakeFixture(4000, 16000, 17, /*base device*/ true);
  const std::vector<Query> queries = RandomQueries(4000, 4000, 55);
  const serve::QueryEngine engine = fx.engine();

  std::vector<QueryAnswer> serial;
  QueryBatchStats serial_stats;
  ASSERT_TRUE(serve::RunQueries(fx.context.get(), engine, queries, 1,
                                &serial, &serial_stats)
                  .ok());
  ExpectAnswersMatchOracle(fx, queries, serial);

  const auto before = fx.context->DeviceStats();
  const io::IoStats agg_before = fx.context->stats();
  std::vector<QueryAnswer> threaded;
  QueryBatchStats threaded_stats;
  ASSERT_TRUE(serve::RunQueries(fx.context.get(), engine, queries, 4,
                                &threaded, &threaded_stats)
                  .ok());
  const auto after = fx.context->DeviceStats();
  const io::IoStats agg_after = fx.context->stats();

  // Slicing must never change a verdict — only how many sweeps ran.
  ASSERT_EQ(threaded.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(threaded[i].known, serial[i].known) << "query " << i;
    ASSERT_EQ(threaded[i].result, serial[i].result) << "query " << i;
    ASSERT_EQ(threaded[i].scc_u, serial[i].scc_u) << "query " << i;
    ASSERT_EQ(threaded[i].scc_size, serial[i].scc_size) << "query " << i;
  }
  EXPECT_EQ(threaded_stats.queries, serial_stats.queries);
  EXPECT_EQ(threaded_stats.probes, serial_stats.probes);

  // Per-device accounting stays exact under concurrency: the rows'
  // deltas sum to the aggregate delta, and every swept block is on
  // some row.
  std::uint64_t row_sum = 0;
  for (std::size_t i = 0; i < after.size(); ++i) {
    row_sum += (after[i].stats - before[i].stats).total_ios();
  }
  EXPECT_EQ(row_sum, (agg_after - agg_before).total_ios());
  EXPECT_GE((agg_after - agg_before).total_reads(),
            threaded_stats.swept_blocks);
  CleanupFixture(fx);
}

// ---- Striped staging -------------------------------------------------

// Serving under --placement=striped stages the artifact onto the
// scratch devices so the map sweep runs at multi-device bandwidth.
// Explicit options (not the env matrix): two RAM-backed scratch devices
// under striped placement, the artifact itself on the base device.
TEST(ServeQueryTest, StagedArtifactSweepStripesAcrossDevices) {
  io::IoContextOptions options;
  options.block_size = 4096;
  options.memory_bytes = 4 << 20;
  options.device_model.model = io::DeviceModel::kMem;
  options.scratch_dirs = {"", ""};
  options.scratch_placement = io::PlacementPolicy::kStriped;
  io::IoContext context(options);
  ASSERT_EQ(context.temp_files().effective_stripe_width(), 2u);

  const auto edges = gen::RandomDigraphEdges(6000, 24000, 29);
  const auto g = graph::MakeDiskGraph(&context, edges);
  const std::string artifact_path =
      (fs::path(::testing::TempDir()) / "extscc_striped_serve.art").string();
  fs::remove(artifact_path);
  auto built = serve::BuildArtifact(&context, g, artifact_path, {});
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  // Baseline: answers straight off the base-device artifact.
  const std::vector<Query> queries = RandomQueries(800, 6000, 31);
  std::vector<QueryAnswer> direct_answers(queries.size());
  {
    auto direct = ArtifactReader::Open(&context, artifact_path);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    const ArtifactReader reader = std::move(direct).value();
    ASSERT_TRUE(serve::QueryEngine(&reader)
                    .RunBatch(&context, queries.data(), queries.size(),
                              direct_answers.data())
                    .ok());
  }

  auto staged = serve::StageArtifactForServing(&context, artifact_path);
  ASSERT_TRUE(staged.ok()) << staged.status().ToString();
  ASSERT_TRUE(staged.value().staged);
  ASSERT_NE(staged.value().path, artifact_path);
  auto opened = ArtifactReader::Open(&context, staged.value().path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const ArtifactReader reader = std::move(opened).value();
  const serve::QueryEngine engine(&reader);

  const auto before = context.DeviceStats();
  const io::IoStats agg_before = context.stats();
  std::vector<QueryAnswer> answers(queries.size());
  QueryBatchStats stats;
  ASSERT_TRUE(engine
                  .RunBatch(&context, queries.data(), queries.size(),
                            answers.data(), &stats)
                  .ok());
  const auto after = context.DeviceStats();
  const io::IoStats agg_after = context.stats();

  // The sweep fans out: both scratch members read blocks, the base
  // device none (the staged copy is the only file touched), and the
  // per-device rows still account for exactly the aggregate.
  ASSERT_EQ(after[0].name, "base");
  EXPECT_EQ((after[0].stats - before[0].stats).total_reads(), 0u);
  std::size_t scratch_readers = 0;
  std::uint64_t row_sum = 0;
  for (std::size_t i = 0; i < after.size(); ++i) {
    const io::IoStats delta = after[i].stats - before[i].stats;
    row_sum += delta.total_ios();
    if (i > 0 && delta.total_reads() > 0) ++scratch_readers;
  }
  EXPECT_GE(scratch_readers, 2u) << "sweep must stripe across devices";
  EXPECT_EQ(row_sum, (agg_after - agg_before).total_ios());
  EXPECT_GT(stats.swept_blocks, 0u);

  // Staging must not change a single answer.
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(answers[i].known, direct_answers[i].known) << "query " << i;
    ASSERT_EQ(answers[i].result, direct_answers[i].result) << "query " << i;
    ASSERT_EQ(answers[i].scc_size, direct_answers[i].scc_size)
        << "query " << i;
  }
  fs::remove(artifact_path);
}

// ---- Line protocol ---------------------------------------------------

TEST(ServeProtocolTest, ParsesWellFormedLines) {
  Query q;
  ASSERT_TRUE(serve::ParseQueryLine("same 3 7", &q));
  EXPECT_EQ(q.type, QueryType::kSameScc);
  EXPECT_EQ(q.u, 3u);
  EXPECT_EQ(q.v, 7u);
  ASSERT_TRUE(serve::ParseQueryLine("  reach 0 4294967295 ", &q));
  EXPECT_EQ(q.type, QueryType::kReachable);
  EXPECT_EQ(q.v, 4294967295u);
  ASSERT_TRUE(serve::ParseQueryLine("stat 12", &q));
  EXPECT_EQ(q.type, QueryType::kSccStat);
  EXPECT_EQ(q.u, 12u);
}

TEST(ServeProtocolTest, RejectsMalformedLines) {
  Query q;
  const char* bad[] = {
      "",             // blank is a flush, not a query
      "   ",          //
      "nope 1 2",     // unknown verb
      "same 1",       // arity
      "same 1 2 3",   //
      "stat",         //
      "stat 1 2",     //
      "same x 2",     // non-numeric
      "same -1 2",    // sign
      "same 1 4294967296",  // > u32
      "reach 1 99999999999999999999",  // overflow
  };
  for (const char* line : bad) {
    EXPECT_FALSE(serve::ParseQueryLine(line, &q)) << "'" << line << "'";
  }
}

TEST(ServeProtocolTest, FormatsAnswers) {
  QueryAnswer a;
  a.known = true;
  a.result = true;
  EXPECT_EQ(serve::FormatAnswer({QueryType::kSameScc, 3, 7}, a),
            "same 3 7 true");
  a.result = false;
  EXPECT_EQ(serve::FormatAnswer({QueryType::kReachable, 3, 7}, a),
            "reach 3 7 false");
  a.scc_u = 2;
  a.scc_size = 41;
  EXPECT_EQ(serve::FormatAnswer({QueryType::kSccStat, 3, 0}, a),
            "stat 3 scc=2 size=41");
  a.known = false;
  EXPECT_EQ(serve::FormatAnswer({QueryType::kSameScc, 3, 7}, a),
            "same 3 7 unknown");
  EXPECT_EQ(serve::FormatAnswer({QueryType::kSccStat, 3, 0}, a),
            "stat 3 unknown");
}

}  // namespace
}  // namespace extscc
