// I/O-model assertions: the costs the paper states for the primitives
// must hold on the counters, machine-checked rather than proved-on-paper:
//   scan(m) = ceil(m·rec / B) sequential block reads,
//   sort(m) = O((m·rec / B) · log_{M/B}(m·rec / M)) block I/Os,
//   Get-V / Get-E / Expansion = O(sort(|E|) + sort(|V|)) per level
//   (Theorems 5.1, 5.2, 6.1), and Ext-SCC generates (almost) no random
//   I/O while DFS-SCC is random-dominated.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/contraction.h"
#include "core/expansion.h"
#include "core/ext_scc.h"
#include "core/vertex_cover.h"
#include "extsort/external_sorter.h"
#include "gen/classic_graphs.h"
#include "graph/edge_file.h"
#include "graph/disk_graph.h"
#include "io/record_stream.h"
#include "test_util.h"

namespace extscc {
namespace {

using graph::Edge;
using testing::MakeTestContext;

struct U64Less {
  bool operator()(std::uint64_t a, std::uint64_t b) const { return a < b; }
};

TEST(IoModelTest, ScanCostsExactlyFileBlocks) {
  auto ctx = MakeTestContext(/*memory_bytes=*/1 << 20, /*block_size=*/4096);
  const std::string path = ctx->NewTempPath("data");
  constexpr std::uint64_t kCount = 10'000;  // 80'000 bytes -> 20 blocks
  {
    io::RecordWriter<std::uint64_t> writer(ctx.get(), path);
    for (std::uint64_t i = 0; i < kCount; ++i) writer.Append(i);
  }
  const auto before = ctx->stats();
  io::RecordReader<std::uint64_t> reader(ctx.get(), path);
  std::uint64_t value;
  while (reader.Next(&value)) {
  }
  const auto delta = ctx->stats() - before;
  const std::uint64_t expected_blocks =
      (kCount * sizeof(std::uint64_t) + 4095) / 4096;
  // One extra read attempt returns 0 bytes at EOF without counting.
  EXPECT_EQ(delta.total_reads(), expected_blocks);
  EXPECT_EQ(delta.random_reads, 1u) << "only the first block is a seek";
}

TEST(IoModelTest, SortIoScalesNearLinearlyAtFixedFanIn) {
  // With M and B fixed, doubling n at the same number of merge passes
  // should roughly double the I/O count.
  auto run = [](std::uint64_t n) {
    auto ctx = MakeTestContext(/*memory_bytes=*/64 << 10,
                               /*block_size=*/4096);
    const std::string in = ctx->NewTempPath("in");
    {
      util::Rng rng(n);
      io::RecordWriter<std::uint64_t> writer(ctx.get(), in);
      for (std::uint64_t i = 0; i < n; ++i) writer.Append(rng.Next());
    }
    const auto before = ctx->stats();
    const std::string out = ctx->NewTempPath("out");
    extsort::SortFile<std::uint64_t, U64Less>(ctx.get(), in, out, U64Less());
    return (ctx->stats() - before).total_ios();
  };
  const auto small = run(50'000);
  const auto big = run(100'000);
  EXPECT_GT(big, small);
  EXPECT_LT(static_cast<double>(big), 3.0 * static_cast<double>(small))
      << "sort I/O must not blow up superlinearly at fixed geometry";
}

TEST(IoModelTest, SortUsesOnlyBoundedMemory) {
  // The sorter must spill: with M = 16 KB and 800 KB of input, at least
  // 50 runs are formed (the in-memory fast path would be 1 run).
  auto ctx = MakeTestContext(/*memory_bytes=*/16 << 10, /*block_size=*/4096);
  const std::string in = ctx->NewTempPath("in");
  {
    util::Rng rng(3);
    io::RecordWriter<std::uint64_t> writer(ctx.get(), in);
    for (int i = 0; i < 100'000; ++i) writer.Append(rng.Next());
  }
  const std::string out = ctx->NewTempPath("out");
  const auto info =
      extsort::SortFile<std::uint64_t, U64Less>(ctx.get(), in, out,
                                                U64Less());
  EXPECT_GE(info.num_runs, 40u);
  EXPECT_GE(info.merge_passes, 1u);
}

// One contraction level's I/O must be within a constant multiple of the
// cost of sorting the level's edges — Theorems 5.1 + 5.2 say
// O(sort(|E|) + sort(|V|)).
TEST(IoModelTest, ContractionLevelWithinConstantOfSortCost) {
  auto ctx = MakeTestContext(/*memory_bytes=*/32 << 10, /*block_size=*/1024);
  const auto edges = gen::RandomDigraphEdges(2000, 8000, 31);
  const auto g = graph::MakeDiskGraph(ctx.get(), edges);

  // Reference: one sort of the edge file.
  std::uint64_t sort_ios;
  {
    const auto before = ctx->stats();
    const std::string sorted = ctx->NewTempPath("ref");
    graph::SortEdgesBySrc(ctx.get(), g.edge_path, sorted);
    sort_ios = (ctx->stats() - before).total_ios();
  }

  // Measured: E_in/E_out sorts + Get-V + Get-E (one full level).
  const auto before = ctx->stats();
  const std::string ein = ctx->NewTempPath("ein");
  const std::string eout = ctx->NewTempPath("eout");
  graph::SortEdgesByDst(ctx.get(), g.edge_path, ein);
  graph::SortEdgesBySrc(ctx.get(), g.edge_path, eout);
  const auto cover =
      core::ComputeVertexCover(ctx.get(), ein, eout, core::CoverOptions{});
  core::ContractEdges(ctx.get(), ein, eout, cover.cover_path,
                      core::ContractionOptions{});
  const auto level_ios = (ctx->stats() - before).total_ios();

  EXPECT_LT(level_ios, 20 * sort_ios)
      << "a level must stay within a small constant of sort(|E|)";
}

TEST(IoModelTest, ExtSccSequentialFractionIsHigh) {
  auto ctx = MakeTestContext(/*memory_bytes=*/8 << 10, /*block_size=*/1024);
  const auto g = graph::MakeDiskGraph(
      ctx.get(), gen::RandomDigraphEdges(1500, 4500, 33));
  const auto before = ctx->stats();
  const std::string out = ctx->NewTempPath("out");
  ASSERT_TRUE(core::RunExtScc(ctx.get(), g, out,
                              core::ExtSccOptions::Optimized())
                  .ok());
  const auto delta = ctx->stats() - before;
  const double random_fraction =
      static_cast<double>(delta.random_ios()) /
      static_cast<double>(delta.total_ios());
  // Random I/Os come only from stream opens (first block per file);
  // with thousands of blocks per stream the fraction must stay small.
  EXPECT_LT(random_fraction, 0.35) << delta.ToString();
}

TEST(IoModelTest, IterationIoRecordedPerLevelSumsToTotal) {
  auto ctx = MakeTestContext(/*memory_bytes=*/4 << 10, /*block_size=*/512);
  const auto g = graph::MakeDiskGraph(
      ctx.get(), gen::RandomDigraphEdges(800, 2400, 35));
  const std::string out = ctx->NewTempPath("out");
  auto result =
      core::RunExtScc(ctx.get(), g, out, core::ExtSccOptions::Basic());
  ASSERT_TRUE(result.ok());
  std::uint64_t contraction_ios = 0;
  for (const auto& it : result.value().iterations) {
    contraction_ios += it.ios;
  }
  EXPECT_LE(contraction_ios, result.value().total_ios);
  EXPECT_GT(contraction_ios, 0u);
}

}  // namespace
}  // namespace extscc
