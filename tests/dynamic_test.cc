// Dynamic subsystem: incremental SCC maintenance under edge-insert
// batches (src/dyn/). The load-bearing claims, pinned here:
//
//  - After every structural batch the published artifact is the one
//    build-index would write for the union graph — byte for byte except
//    the preamble's data version (and its CRC).
//  - A batch with no new nodes and no new condensation edges takes the
//    delta-log path: the artifact file is untouched and a fresh open
//    recovers the pending edges.
//  - Under injected device faults an update either completes with
//    correct labels or fails with a documented status code — and a
//    failed update NEVER publishes a torn artifact: the previous
//    version stays live, readable, and identical.
//
// The oracle matrix runs the same randomized insert stream across
// io_threads {0, 2} x placement {rr, striped}.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dyn/delta_log.h"
#include "dyn/dynamic_index.h"
#include "gen/classic_graphs.h"
#include "graph/digraph.h"
#include "graph/disk_graph.h"
#include "graph/graph_types.h"
#include "io/io_context.h"
#include "serve/artifact.h"
#include "serve/index_builder.h"
#include "serve/query_engine.h"
#include "test_util.h"
#include "util/random.h"
#include "util/status.h"

namespace extscc {
namespace {

namespace fs = std::filesystem;
using dyn::DynamicSccIndex;
using dyn::UpdateBatchStats;
using graph::Edge;
using graph::NodeId;
using graph::SccEntry;
using graph::SccId;
using serve::ArtifactReader;

struct MatrixConfig {
  const char* name;
  std::size_t io_threads;
  io::PlacementPolicy placement;
};

constexpr MatrixConfig kMatrix[] = {
    {"serial_rr", 0, io::PlacementPolicy::kRoundRobin},
    {"serial_striped", 0, io::PlacementPolicy::kStriped},
    {"threaded_rr", 2, io::PlacementPolicy::kRoundRobin},
    {"threaded_striped", 2, io::PlacementPolicy::kStriped},
};

// RAM-backed scratch regardless of the env matrix (the chaos job's
// faulty injection gets its own dedicated test below; the oracle runs
// must be deterministic), but sort_threads and the like still apply.
std::unique_ptr<io::IoContext> MakeDynContext(const MatrixConfig& config) {
  io::IoContextOptions options;
  options.block_size = 4096;
  options.memory_bytes = 4 << 20;
  testing::ApplyTestEnvOptions(&options);
  options.device_model = io::DeviceModelSpec{};
  options.device_model.model = io::DeviceModel::kMem;
  options.scratch_dirs = {"", ""};
  options.scratch_placement = config.placement;
  options.io_threads = config.io_threads;
  return std::make_unique<io::IoContext>(options);
}

// A user-facing artifact path on the base (posix) device — the device
// whose Rename backs the publish protocol.
std::string BaseArtifactPath(const std::string& tag) {
  const std::string path =
      (fs::path(::testing::TempDir()) / ("extscc_dyn_" + tag + ".art"))
          .string();
  fs::remove(path);
  fs::remove(path + ".dlog");
  return path;
}

std::vector<char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

// Byte-identity modulo the preamble's data_version field (offset 16..24)
// and the preamble CRC that covers it (offset 28..32).
void ExpectArtifactBytesIdentical(const std::string& a_path,
                                  const std::string& b_path,
                                  const char* label) {
  const std::vector<char> a = ReadFileBytes(a_path);
  const std::vector<char> b = ReadFileBytes(b_path);
  ASSERT_EQ(a.size(), b.size()) << label;
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if ((i >= 16 && i < 24) || (i >= 28 && i < 32)) continue;
    if (a[i] != b[i]) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0u)
      << label << ": " << mismatches << " differing bytes outside the "
      << "data-version field";
}

std::vector<SccEntry> ScanMap(const ArtifactReader& reader) {
  serve::SccMapScanner scan = reader.OpenNodeSccScan();
  std::vector<SccEntry> out;
  SccEntry entry;
  while (scan.Next(&entry)) out.push_back(entry);
  EXPECT_TRUE(scan.status().ok()) << scan.status().ToString();
  return out;
}

// Section-by-section equality of the incremental artifact against a
// fresh build over the union graph. `pending` is the incremental
// side's delta log: its edges are not folded into the artifact yet, so
// only the summary's raw edge count may differ — by exactly that much.
void ExpectMatchesRebuild(const ArtifactReader& inc,
                          const ArtifactReader& rebuild,
                          std::uint64_t pending, const char* label) {
  SCOPED_TRACE(label);
  const std::vector<SccEntry> map_inc = ScanMap(inc);
  const std::vector<SccEntry> map_re = ScanMap(rebuild);
  ASSERT_EQ(map_inc.size(), map_re.size());
  for (std::size_t i = 0; i < map_inc.size(); ++i) {
    ASSERT_EQ(map_inc[i].node, map_re[i].node) << "entry " << i;
    ASSERT_EQ(map_inc[i].scc, map_re[i].scc) << "entry " << i;
  }

  const auto& la = inc.labels();
  const auto& lb = rebuild.labels();
  ASSERT_EQ(la.num_rounds(), lb.num_rounds());
  for (std::uint32_t r = 0; r < la.num_rounds(); ++r) {
    EXPECT_EQ(la.ranks(r), lb.ranks(r)) << "round " << r;
    EXPECT_EQ(la.mins(r), lb.mins(r)) << "round " << r;
  }
  EXPECT_EQ(la.dag().num_nodes(), lb.dag().num_nodes());
  EXPECT_EQ(la.dag().num_edges(), lb.dag().num_edges());

  ASSERT_EQ(inc.num_sccs(), rebuild.num_sccs());
  for (std::uint64_t s = 0; s < inc.num_sccs(); ++s) {
    EXPECT_EQ(inc.scc_size(static_cast<SccId>(s)),
              rebuild.scc_size(static_cast<SccId>(s)))
        << "scc " << s;
  }

  const serve::ArtifactSummary& A = inc.summary();
  const serve::ArtifactSummary& B = rebuild.summary();
  EXPECT_EQ(A.graph_nodes, B.graph_nodes);
  EXPECT_EQ(A.graph_edges + pending, B.graph_edges);
  EXPECT_EQ(A.num_sccs, B.num_sccs);
  EXPECT_EQ(A.dag_edges, B.dag_edges);
  EXPECT_EQ(A.largest_scc, B.largest_scc);
  EXPECT_EQ(A.largest_scc_size, B.largest_scc_size);
  EXPECT_EQ(A.num_singletons, B.num_singletons);
  EXPECT_EQ(A.bowtie_computed, B.bowtie_computed);
  EXPECT_EQ(A.core_scc, B.core_scc);
  EXPECT_EQ(A.core_size, B.core_size);
  EXPECT_EQ(A.in_size, B.in_size);
  EXPECT_EQ(A.out_size, B.out_size);
  EXPECT_EQ(A.other_size, B.other_size);
}

// Random insert batch. Structural batches mix brand-new nodes, edges
// between random existing nodes (closing cycles), duplicates, and
// self-loops; non-structural ones draw only from edges the artifact
// already condensed (duplicates of base edges, self-loops on their
// endpoints) — provably intra-SCC or duplicate-DAG.
std::vector<Edge> MakeBatch(util::Rng* rng, const std::vector<Edge>& base,
                            std::uint32_t num_nodes,
                            std::uint32_t* next_new_node, std::size_t n,
                            bool structural) {
  std::vector<Edge> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t kind = rng->Uniform(structural ? 6 : 2);
    const Edge& pick = base[rng->Uniform(base.size())];
    switch (kind) {
      case 0:  // duplicate of an edge the artifact has seen
        out.push_back(pick);
        break;
      case 1:  // self-loop on a node the artifact has seen
        out.push_back(Edge{pick.src, pick.src});
        break;
      case 2:
      case 3:  // random edge over the base id range (often a new DAG
               // edge, sometimes a cycle-closing backward one)
        out.push_back(
            Edge{static_cast<NodeId>(rng->Uniform(num_nodes)),
                 static_cast<NodeId>(rng->Uniform(num_nodes))});
        break;
      case 4:  // edge into a brand-new node
        out.push_back(Edge{pick.src, (*next_new_node)++});
        break;
      case 5:  // edge out of a brand-new node
        out.push_back(Edge{(*next_new_node)++, pick.dst});
        break;
    }
  }
  return out;
}

// ---- The oracle matrix -----------------------------------------------

TEST(DynamicTest, IncrementalMatchesFullRebuildAcrossMatrix) {
  for (const MatrixConfig& config : kMatrix) {
    SCOPED_TRACE(config.name);
    auto context = MakeDynContext(config);
    const std::vector<Edge> base = gen::RandomDigraphEdges(300, 1200, 42);
    const std::string inc_path =
        BaseArtifactPath(std::string("inc_") + config.name);
    const std::string rebuild_path =
        BaseArtifactPath(std::string("re_") + config.name);
    {
      const auto g = graph::MakeDiskGraph(context.get(), base);
      auto built = serve::BuildArtifact(context.get(), g, inc_path, {});
      ASSERT_TRUE(built.ok()) << built.status().ToString();
    }
    auto opened = DynamicSccIndex::Open(context.get(), inc_path);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    DynamicSccIndex index = std::move(opened).value();

    util::Rng rng(1000 + config.io_threads * 10 +
                  (config.placement == io::PlacementPolicy::kStriped));
    std::vector<Edge> union_edges = base;
    std::uint32_t next_new_node = 300;
    // Batch 2 is crafted non-structural; the last batch is structural
    // so the run ends with an empty delta log (raw-byte comparison).
    const bool structural_plan[] = {true, false, true, true, true};
    for (std::size_t k = 0; k < 5; ++k) {
      SCOPED_TRACE("batch " + std::to_string(k));
      const std::vector<Edge> batch = MakeBatch(
          &rng, base, 300, &next_new_node, 60, structural_plan[k]);
      union_edges.insert(union_edges.end(), batch.begin(), batch.end());

      auto applied = index.ApplyBatch(batch);
      ASSERT_TRUE(applied.ok()) << applied.status().ToString();
      const UpdateBatchStats& stats = applied.value();
      EXPECT_EQ(stats.edges_in, batch.size());
      if (!structural_plan[k]) {
        EXPECT_FALSE(stats.rewrote_artifact);
        EXPECT_EQ(stats.new_dag_edges, 0u);
        EXPECT_EQ(stats.new_nodes, 0u);
        EXPECT_GT(index.pending_delta_edges(), 0u);
      }

      // Full rebuild over the union graph, same label parameters.
      const auto g = graph::MakeDiskGraph(context.get(), union_edges);
      auto rebuilt =
          serve::BuildArtifact(context.get(), g, rebuild_path, {});
      ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
      auto rebuild_reader = ArtifactReader::Open(context.get(), rebuild_path);
      ASSERT_TRUE(rebuild_reader.ok()) << rebuild_reader.status().ToString();
      ExpectMatchesRebuild(index.reader(), rebuild_reader.value(),
                           index.pending_delta_edges(), config.name);
    }

    // The stream ended on a structural publish: delta log folded in, so
    // the files agree byte for byte outside the data-version field.
    EXPECT_EQ(index.pending_delta_edges(), 0u);
    EXPECT_GT(index.data_version(), 0u);
    ExpectArtifactBytesIdentical(inc_path, rebuild_path, config.name);

    // Query answers off the maintained artifact match fresh oracles of
    // the union graph.
    const auto oracle = testing::Oracle(union_edges);
    const graph::Digraph union_graph(union_edges);
    const serve::QueryEngine engine(&index.reader());
    std::vector<serve::Query> queries;
    for (std::size_t i = 0; i < 300; ++i) {
      const std::uint64_t kind = rng.Uniform(3);
      serve::Query q;
      q.type = kind == 0   ? serve::QueryType::kSameScc
               : kind == 1 ? serve::QueryType::kReachable
                           : serve::QueryType::kSccStat;
      q.u = static_cast<NodeId>(rng.Uniform(next_new_node + 5));
      q.v = static_cast<NodeId>(rng.Uniform(next_new_node + 5));
      queries.push_back(q);
    }
    std::vector<serve::QueryAnswer> answers(queries.size());
    ASSERT_TRUE(engine
                    .RunBatch(context.get(), queries.data(), queries.size(),
                              answers.data())
                    .ok());
    const auto sizes = oracle.ComponentSizes();
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const serve::Query& q = queries[i];
      const serve::QueryAnswer& a = answers[i];
      const bool u_known = oracle.Contains(q.u);
      const bool v_known = oracle.Contains(q.v);
      switch (q.type) {
        case serve::QueryType::kSccStat:
          ASSERT_EQ(a.known, u_known) << "stat " << q.u;
          if (a.known) {
            ASSERT_EQ(a.scc_size, sizes.at(oracle.LabelOf(q.u)))
                << "stat " << q.u;
          }
          break;
        case serve::QueryType::kSameScc:
          ASSERT_EQ(a.known, u_known && v_known);
          if (a.known) {
            ASSERT_EQ(a.result, oracle.LabelOf(q.u) == oracle.LabelOf(q.v))
                << "same " << q.u << " " << q.v;
          }
          break;
        case serve::QueryType::kReachable:
          ASSERT_EQ(a.known, u_known && v_known);
          if (a.known) {
            ASSERT_EQ(a.result, testing::OracleReach(union_graph, q.u, q.v))
                << "reach " << q.u << " " << q.v;
          }
          break;
      }
    }
    fs::remove(inc_path);
    fs::remove(rebuild_path);
  }
}

// ---- Delta log -------------------------------------------------------

TEST(DynamicTest, DeltaLogSurvivesReopenAndFoldsIntoNextRewrite) {
  auto context = MakeDynContext(kMatrix[0]);
  const std::vector<Edge> base = gen::RandomDigraphEdges(200, 800, 9);
  const std::string path = BaseArtifactPath("reopen");
  {
    const auto g = graph::MakeDiskGraph(context.get(), base);
    ASSERT_TRUE(serve::BuildArtifact(context.get(), g, path, {}).ok());
  }
  const std::vector<char> before_bytes = ReadFileBytes(path);

  std::uint64_t pending = 0;
  {
    auto opened = DynamicSccIndex::Open(context.get(), path);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    DynamicSccIndex index = std::move(opened).value();
    // Two non-structural batches in a row: duplicates and self-loops.
    util::Rng rng(17);
    std::uint32_t unused = 200;
    for (int k = 0; k < 2; ++k) {
      const std::vector<Edge> batch =
          MakeBatch(&rng, base, 200, &unused, 40, /*structural=*/false);
      auto applied = index.ApplyBatch(batch);
      ASSERT_TRUE(applied.ok()) << applied.status().ToString();
      EXPECT_FALSE(applied.value().rewrote_artifact);
      pending += batch.size();
      EXPECT_EQ(index.pending_delta_edges(), pending);
    }
    EXPECT_EQ(index.data_version(), 0u);
  }
  // The artifact file itself never moved.
  EXPECT_EQ(ReadFileBytes(path), before_bytes);

  // A fresh open recovers the pending edges from the sidecar log...
  auto reopened = DynamicSccIndex::Open(context.get(), path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  DynamicSccIndex index = std::move(reopened).value();
  EXPECT_EQ(index.pending_delta_edges(), pending);

  // ...and the next structural batch folds them into the published
  // summary: raw union edge count = base + pending + this batch.
  const std::vector<Edge> structural = {Edge{0, 200}, Edge{200, 0}};
  auto applied = index.ApplyBatch(structural);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_TRUE(applied.value().rewrote_artifact);
  EXPECT_EQ(index.pending_delta_edges(), 0u);
  EXPECT_EQ(index.reader().summary().graph_edges,
            base.size() + pending + structural.size());
  EXPECT_FALSE(fs::exists(dyn::DeltaLogPathFor(path)));
  fs::remove(path);
}

TEST(DynamicTest, StaleDeltaLogReadsEmpty) {
  auto context = MakeDynContext(kMatrix[0]);
  const std::string path = BaseArtifactPath("stale");
  // A log claiming base version 7 against an artifact at version 0:
  // its edges are already folded in — honest empty, not an error.
  ASSERT_TRUE(dyn::WriteDeltaLog(context.get(), dyn::DeltaLogPathFor(path),
                                 /*base_version=*/7, {Edge{1, 2}})
                  .ok());
  auto read = dyn::ReadDeltaLog(context.get(), dyn::DeltaLogPathFor(path),
                                /*expected_base_version=*/0);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(read.value().empty());
  // Matching version: edges come back.
  auto match = dyn::ReadDeltaLog(context.get(), dyn::DeltaLogPathFor(path),
                                 /*expected_base_version=*/7);
  ASSERT_TRUE(match.ok()) << match.status().ToString();
  ASSERT_EQ(match.value().size(), 1u);
  EXPECT_EQ(match.value()[0].src, 1u);
  EXPECT_EQ(match.value()[0].dst, 2u);
  fs::remove(dyn::DeltaLogPathFor(path));
}

// ---- Chaos: faults must not break publication ------------------------

// The artifact lives on a fault-injecting (RAM-backed) scratch device,
// so every read AND write of the update path can fault — transiently
// (EIO, torn transfers; the retry layer absorbs most) or persistently
// (the device dies at op N). Every ApplyBatch must either succeed with
// the oracle partition or fail with a documented code; after any
// failure the last published version must still open clean and carry
// the same map bytes. A half-written artifact version is never visible.
TEST(DynamicTest, FaultyDeviceNeverPublishesTornArtifact) {
  struct ChaosConfig {
    std::uint64_t seed;
    double rate;
    double short_rate;
    std::uint64_t fail_writes_after;  // 0 = transient-only
  };
  const ChaosConfig configs[] = {
      {1, 0.02, 0.01, 0}, {2, 0.05, 0.02, 0},  {3, 0.08, 0.03, 0},
      {4, 0.02, 0.01, 400}, {5, 0.02, 0.01, 900}, {6, 0.05, 0.02, 1500},
  };
  std::uint64_t total_failures = 0, total_successes = 0;
  for (const ChaosConfig& chaos : configs) {
    SCOPED_TRACE("seed " + std::to_string(chaos.seed));
    io::IoContextOptions options;
    options.block_size = 4096;
    options.memory_bytes = 4 << 20;
    options.device_model.model = io::DeviceModel::kFaulty;
    options.device_model.fault.seed = chaos.seed;
    options.device_model.fault.read_fault_rate = chaos.rate;
    options.device_model.fault.write_fault_rate = chaos.rate;
    options.device_model.fault.short_rate = chaos.short_rate;
    options.device_model.fault.fail_writes_after = chaos.fail_writes_after;
    options.device_model.fault.inner = io::DeviceModel::kMem;
    options.scratch_dirs = {""};
    io::IoContext context(options);

    const std::vector<Edge> base = gen::RandomDigraphEdges(150, 600, 77);
    // On the faulty device: a scratch path (RAM-backed, per-context).
    const std::string path = context.NewTempPath("dyn_artifact");
    {
      const auto g = graph::MakeDiskGraph(&context, base);
      auto built = serve::BuildArtifact(&context, g, path, {});
      if (!built.ok()) continue;  // the device died during the build
    }
    auto opened = DynamicSccIndex::Open(&context, path);
    if (!opened.ok()) continue;
    DynamicSccIndex index = std::move(opened).value();

    std::uint64_t committed_version = index.data_version();
    std::vector<SccEntry> committed_map = ScanMap(index.reader());
    std::vector<Edge> applied_union = base;

    util::Rng rng(chaos.seed * 13 + 1);
    std::uint32_t next_new_node = 150;
    for (std::size_t k = 0; k < 6; ++k) {
      const std::vector<Edge> batch = MakeBatch(
          &rng, base, 150, &next_new_node, 40, /*structural=*/true);
      auto applied = index.ApplyBatch(batch);
      if (applied.ok()) {
        ++total_successes;
        applied_union.insert(applied_union.end(), batch.begin(),
                             batch.end());
        committed_version = applied.value().published_version;
        if (applied.value().rewrote_artifact) {
          committed_map = ScanMap(index.reader());
          // Correctness of the published partition vs the in-memory
          // oracle: same-component iff same canonical label.
          const auto oracle = testing::Oracle(applied_union);
          std::map<SccId, SccId> fwd, rev;
          ASSERT_EQ(committed_map.size(), oracle.num_nodes());
          for (const SccEntry& e : committed_map) {
            const SccId want = oracle.LabelOf(e.node);
            const auto f = fwd.emplace(e.scc, want);
            ASSERT_EQ(f.first->second, want) << "node " << e.node;
            const auto r = rev.emplace(want, e.scc);
            ASSERT_EQ(r.first->second, e.scc) << "node " << e.node;
          }
        }
      } else {
        ++total_failures;
        // Documented failure surface only (tool exit codes 5 and 8).
        const util::StatusCode code = applied.status().code();
        EXPECT_TRUE(code == util::StatusCode::kIoError ||
                    code == util::StatusCode::kCorruption)
            << applied.status().ToString();
        // The failed attempt must not have touched the published
        // version: reopen and compare. The reopen itself runs on the
        // faulty device, so allow transient-fault retries.
        for (int attempt = 0; attempt < 5; ++attempt) {
          auto reopen = DynamicSccIndex::Open(&context, path);
          if (!reopen.ok()) continue;
          EXPECT_EQ(reopen.value().data_version(), committed_version);
          const std::vector<SccEntry> now = ScanMap(reopen.value().reader());
          ASSERT_EQ(now.size(), committed_map.size());
          for (std::size_t i = 0; i < now.size(); ++i) {
            ASSERT_EQ(now[i].node, committed_map[i].node);
            ASSERT_EQ(now[i].scc, committed_map[i].scc);
          }
          break;
        }
        // Reopen the handle for the next batch; if the device has died
        // persistently this fails and the remaining batches are moot.
        auto fresh = DynamicSccIndex::Open(&context, path);
        if (!fresh.ok()) break;
        index = std::move(fresh).value();
      }
    }
  }
  // The matrix must exercise BOTH outcomes, or it proves nothing.
  EXPECT_GT(total_successes, 0u);
  EXPECT_GT(total_failures, 0u);
}

}  // namespace
}  // namespace extscc
