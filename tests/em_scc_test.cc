#include <gtest/gtest.h>

#include <vector>

#include "baseline/em_scc.h"
#include "gen/classic_graphs.h"
#include "gen/synthetic_generator.h"
#include "graph/disk_graph.h"
#include "scc/scc_verify.h"
#include "test_util.h"

namespace extscc {
namespace {

using baseline::RunEmScc;
using graph::Edge;
using testing::MakeTestContext;

TEST(EmSccTest, InMemoryFastPath) {
  auto ctx = MakeTestContext();  // 1 MB: Fig. 1 fits immediately
  const auto g = graph::MakeDiskGraph(ctx.get(), gen::Fig1Edges());
  const std::string out = ctx->NewTempPath("scc");
  auto result = RunEmScc(ctx.get(), g, out);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().iterations, 0u);
  EXPECT_EQ(result.value().num_sccs, 5u);
  testing::ExpectSccFileMatchesOracle(ctx.get(), g, out, "EM-SCC");
}

TEST(EmSccTest, ContractsCyclicGraphAcrossIterations) {
  // Budget too small for the whole graph; dense cyclic structure gives
  // every partition SCCs to contract, so EM-SCC succeeds here.
  auto ctx = MakeTestContext(/*memory_bytes=*/4 << 10, /*block_size=*/1024);
  const auto g = graph::MakeDiskGraph(ctx.get(), gen::CycleChainEdges(40, 6));
  const std::string out = ctx->NewTempPath("scc");
  auto result = RunEmScc(ctx.get(), g, out);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result.value().iterations, 1u);
  testing::ExpectSccFileMatchesOracle(ctx.get(), g, out, "EM-SCC");
}

TEST(EmSccTest, Case2DagStalls) {
  // A DAG larger than memory: no partition ever finds a cycle -> the
  // paper's Case-2 infinite loop, surfaced as FailedPrecondition.
  auto ctx = MakeTestContext(/*memory_bytes=*/4 << 10, /*block_size=*/1024);
  const auto g =
      graph::MakeDiskGraph(ctx.get(), gen::RandomDagEdges(2000, 6000, 41));
  const std::string out = ctx->NewTempPath("scc");
  auto result = RunEmScc(ctx.get(), g, out);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kFailedPrecondition);
  EXPECT_NE(result.status().message().find("stalled"), std::string::npos);
}

TEST(EmSccTest, Case1CrossPartitionSccCanStall) {
  // One giant cycle scattered across partitions: each partition sees only
  // path fragments (no cycle), so nothing contracts — the paper's Case-1.
  auto ctx = MakeTestContext(/*memory_bytes=*/4 << 10, /*block_size=*/1024);
  // Shuffle the cycle edges so consecutive edges land in different
  // partitions.
  auto edges = gen::CycleEdges(3000);
  util::Rng rng(43);
  for (std::size_t i = edges.size() - 1; i > 0; --i) {
    std::swap(edges[i], edges[rng.Uniform(i + 1)]);
  }
  const auto g = graph::MakeDiskGraph(ctx.get(), edges);
  const std::string out = ctx->NewTempPath("scc");
  auto result = RunEmScc(ctx.get(), g, out);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(EmSccTest, IsolatedNodesLabelled) {
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), {{1, 2}, {2, 1}}, {7, 9});
  const std::string out = ctx->NewTempPath("scc");
  auto result = RunEmScc(ctx.get(), g, out);
  ASSERT_TRUE(result.ok());
  testing::ExpectSccFileMatchesOracle(ctx.get(), g, out, "EM-SCC isolated");
}

// Sweep on graphs EM-SCC can solve (cyclic-rich or memory-fitting).
class EmSccSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EmSccSweep, MatchesOracleWhenItTerminates) {
  const auto [nodes, seed] = GetParam();
  auto ctx = MakeTestContext(/*memory_bytes=*/32 << 10, /*block_size=*/1024);
  const auto g = graph::MakeDiskGraph(
      ctx.get(),
      gen::RandomDigraphEdges(nodes, nodes * 4, seed,
                              /*allow_degenerate=*/true));
  const std::string out = ctx->NewTempPath("scc");
  auto result = RunEmScc(ctx.get(), g, out);
  if (result.ok()) {
    testing::ExpectSccFileMatchesOracle(ctx.get(), g, out, "EM-SCC sweep");
  } else {
    // Stalling is an accepted outcome — it is the baseline's documented
    // failure mode, never a wrong answer.
    EXPECT_EQ(result.status().code(), util::StatusCode::kFailedPrecondition);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, EmSccSweep,
                         ::testing::Combine(::testing::Values(100, 500, 2000),
                                            ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace extscc
